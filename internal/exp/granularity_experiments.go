package exp

import (
	"fmt"

	"willow/internal/baseline"
	"willow/internal/cluster"
	"willow/internal/metrics"
	"willow/internal/power"
)

func init() {
	register("ablation-granularity", "Ablation — the η1/η2 time-granularity choices of §IV-C", runAblationGranularity)
	register("ablation-smoothing", "Ablation — the Eq. 4 smoothing parameter α", runAblationSmoothing)
	register("ext-demandside", "Demand-side variation — a diurnal workload intensity curve", runExtDemandside)
}

// runAblationGranularity sweeps the supply and consolidation cadences
// (Δ_S = η1·Δ_D, Δ_A = η2·Δ_D). The paper fixes η1 = 4, η2 = 7 for its
// simulation; the sweep shows the trade the choice makes: frequent
// supply updates track a volatile feed closely (less shed demand) at the
// cost of more reallocation churn, while slow consolidation reviews
// leave idle servers burning their static draw for longer.
func runAblationGranularity(opts Options) (*Result, error) {
	run := func(eta1, eta2 int) (*cluster.Result, error) {
		cfg := cluster.PaperConfig(0.45)
		shortenFor(opts)(&cfg)
		// Supply traces are indexed by supply epoch (t/η1), so to compare
		// cadences against the *same wall-clock feed* the sine's period
		// must shrink with η1: 48 ticks of wall-clock period throughout.
		cfg.Supply = power.Sine{Base: 6400, Amplitude: 2200, Period: 48 / eta1}
		cfg.Core.Eta1 = eta1
		cfg.Core.Eta2 = eta2
		return cluster.Run(cfg)
	}
	type pair struct{ eta1, eta2 int }
	pairs := []pair{{1, 2}, {2, 4}, {4, 7}, {8, 14}, {16, 28}}
	if opts.Quick {
		pairs = []pair{{1, 2}, {4, 7}, {16, 28}}
	}
	tb := metrics.NewTable(
		"Time-granularity sweep under a volatile supply (U=45%; paper uses η1=4, η2=7)",
		"η1", "η2", "migrations", "dropped (watt-ticks)", "mean asleep servers", "SLO miss %",
	)
	var fast, slow *cluster.Result
	for _, p := range pairs {
		r, err := run(p.eta1, p.eta2)
		if err != nil {
			return nil, err
		}
		var asleep float64
		for _, f := range r.AsleepFraction {
			asleep += f
		}
		tb.AddRow(fmt.Sprintf("%d", p.eta1), fmt.Sprintf("%d", p.eta2),
			fmt.Sprintf("%d", len(r.Stats.Migrations)),
			fmt.Sprintf("%.0f", r.DroppedWattTicks),
			fmt.Sprintf("%.1f", asleep),
			fmt.Sprintf("%.2f", r.SLOMissFraction*100))
		if p.eta1 == 1 {
			fast = r
		}
		slow = r
	}
	return &Result{
		Table: tb,
		Notes: []string{
			fmt.Sprintf("tracking the feed 16x more slowly sheds %.1fx the demand (%.0f vs %.0f watt-ticks) — the supply-side granularity is a real knob, and the paper's η1=4 sits in the flat part of the curve",
				safeRatio(slow.DroppedWattTicks, fast.DroppedWattTicks),
				slow.DroppedWattTicks, fast.DroppedWattTicks),
		},
	}, nil
}

// runAblationSmoothing sweeps the Eq. 4 exponential-smoothing parameter.
// Small α makes the controller see a heavily damped demand (sluggish but
// calm); α = 1 means reacting to every Poisson fluctuation.
func runAblationSmoothing(opts Options) (*Result, error) {
	alphas := []float64{0.05, 0.15, 0.3, 0.6, 1.0}
	if opts.Quick {
		alphas = []float64{0.05, 0.3, 1.0}
	}
	tb := metrics.NewTable(
		"Smoothing sweep at U=60% under supply dips (paper's simulation behaviour uses α≈0.3)",
		"α", "migrations", "dropped (watt-ticks)", "ping-pongs",
	)
	var rows []*cluster.Result
	for _, alpha := range alphas {
		cfg := cluster.PaperConfig(0.6)
		shortenFor(opts)(&cfg)
		cfg.Supply = power.Trace{8100, 8100, 6100, 6100, 8100, 8100, 6400, 8100}
		cfg.Core.Alpha = alpha
		r, err := cluster.Run(cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
		tb.AddRow(fmt.Sprintf("%.2f", alpha),
			fmt.Sprintf("%d", len(r.Stats.Migrations)),
			fmt.Sprintf("%.0f", r.DroppedWattTicks),
			fmt.Sprintf("%d", r.Stats.PingPongs))
	}
	return &Result{
		Table: tb,
		Notes: []string{
			fmt.Sprintf("unsmoothed demand (α=1) migrates %d times vs %d at α=0.3 — Eq. 4's damping absorbs Poisson noise before it reaches the planner",
				len(rows[len(rows)-1].Stats.Migrations), len(rows[len(alphas)/2].Stats.Migrations)),
			"every setting keeps zero ping-pongs: the Δf guard is independent of smoothing",
		},
	}, nil
}

// runExtDemandside drives the demand side instead of the supply side: a
// diurnal request-intensity curve (0.4x at night to 1.6x at midday) under
// a constant supply. Willow should consolidate overnight and wake
// capacity back for the peak — demand-side adaptation, the other half of
// Section I's variation taxonomy.
func runExtDemandside(opts Options) (*Result, error) {
	cfg := cluster.PaperConfig(0.5)
	if opts.Quick {
		cfg.Warmup = 0
		cfg.Ticks = 48 * cfg.Core.Eta1
	} else {
		cfg.Warmup = 0
		cfg.Ticks = 192 * cfg.Core.Eta1 // two simulated days
	}
	cfg.HotServers = nil
	cfg.DemandProfile = power.Sine{Base: 1.0, Amplitude: 0.6, Period: 96}
	cfg.Sink = opts.EventSink
	r, err := cluster.Run(cfg)
	if err != nil {
		return nil, err
	}
	var asleepMean float64
	asleepAny := 0
	for _, f := range r.AsleepFraction {
		asleepMean += f
		if f > 0.05 {
			asleepAny++
		}
	}
	tb := metrics.NewTable(
		"Diurnal demand (0.4x–1.6x of U=50%) under constant supply",
		"quantity", "value",
	)
	tb.AddRow("consolidation migrations", fmt.Sprintf("%d", r.ConsolidationMigrations))
	tb.AddRow("demand migrations", fmt.Sprintf("%d", r.DemandMigrations))
	tb.AddRow("servers that slept at some point", fmt.Sprintf("%d / 18", asleepAny))
	tb.AddRow("server wakes", fmt.Sprintf("%d", r.Stats.Wakes))
	tb.AddRow("mean asleep fraction", fmt.Sprintf("%.2f", asleepMean/18))
	tb.AddRow("dropped (watt-ticks)", fmt.Sprintf("%.0f", r.DroppedWattTicks))
	tb.AddRow("ping-pongs", fmt.Sprintf("%d", r.Stats.PingPongs))
	return &Result{
		Table: tb,
		Notes: []string{
			fmt.Sprintf("over two simulated days Willow consolidates each night (%d consolidation migrations, %d servers slept) and wakes capacity for each peak (%d wakes), shedding %.2f%% of energy served",
				r.ConsolidationMigrations, asleepAny, r.Stats.Wakes,
				100*r.DroppedWattTicks/r.TotalEnergy),
		},
	}, nil
}

func init() {
	register("ablation-foresight", "Ablation — reactive control vs a one-epoch supply forecast", runAblationForesight)
}

// runAblationForesight compares reactive Willow with an oracle fed a
// one-epoch supply forecast (day-ahead renewable forecasts make this
// realistic). Foresight lets adaptation complete before a plunge lands
// instead of during it.
func runAblationForesight(opts Options) (*Result, error) {
	plunges := power.Trace{8100, 8100, 8100, 5200, 5200, 8100, 8100, 8100, 5400, 5400, 8100, 8100}
	run := func(v baseline.Variant) (*cluster.Result, error) {
		return baseline.Run(v, 0.6, func(c *cluster.Config) {
			shortenFor(opts)(c)
			c.Supply = plunges
		})
	}
	reactive, err := run(baseline.Willow)
	if err != nil {
		return nil, err
	}
	oracle, err := run(baseline.Oracle)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		"Reactive control vs one-epoch supply foresight (repeated plunges, U=60%)",
		"variant", "migrations", "dropped (watt-ticks)", "SLO miss %",
	)
	for _, row := range []struct {
		name string
		r    *cluster.Result
	}{{"willow (reactive)", reactive}, {"willow + forecast", oracle}} {
		tb.AddRow(row.name,
			fmt.Sprintf("%d", len(row.r.Stats.Migrations)),
			fmt.Sprintf("%.0f", row.r.DroppedWattTicks),
			fmt.Sprintf("%.2f", row.r.SLOMissFraction*100))
	}
	return &Result{
		Table: tb,
		Notes: []string{
			fmt.Sprintf("the forecast cuts churn (%d migrations vs %d reactive): adaptation completes before the plunge instead of during it",
				len(oracle.Stats.Migrations), len(reactive.Stats.Migrations)),
			fmt.Sprintf("total shed demand is a wash (%.0f vs %.0f watt-ticks): the oracle throttles one epoch early, trading when it sheds, not whether",
				oracle.DroppedWattTicks, reactive.DroppedWattTicks),
		},
	}, nil
}
