package exp

import (
	"fmt"

	"willow/internal/cluster"
	"willow/internal/metrics"
	"willow/internal/telemetry"
)

func init() {
	register("sensing", "Sensor-fault tolerance — corrupted telemetry vs robust estimation", runSensing)
}

// runSensing measures what the robust temperature estimator buys when
// instruments lie. Each fault intensity runs twice against an identical
// seeded sensor-fault plan (cluster.ApplySensorChaos): once naive —
// the controller trusts every reading, so a sensor stuck cold while the
// server heats walks the Eq. 3 cap up and the *physical* temperature
// through the limit — and once with the estimator armed, whose
// safe-side anchor (core/sensing.go) keeps the observed temperature at
// or above truth, so the true-temperature cap holds with zero
// violations at the price of guard-band conservatism. A clean run
// anchors both against the fault-free baseline.
//
// With Options.SensorSpec set the intensity ladder is replaced by that
// one spec (still naive vs robust).
func runSensing(opts Options) (*Result, error) {
	type variant struct {
		name  string
		spec  string
		naive bool
	}
	variants := []variant{
		{"clean", "", false},
		{"light/naive", "light", true},
		{"light/robust", "light", false},
		{"heavy/naive", "heavy", true},
		{"heavy/robust", "heavy", false},
	}
	if opts.Quick {
		variants = []variant{
			{"clean", "", false},
			{"heavy/naive", "heavy", true},
			{"heavy/robust", "heavy", false},
		}
	}
	if opts.SensorSpec != "" {
		variants = []variant{
			{"clean", "", false},
			{"custom/naive", opts.SensorSpec, true},
			{"custom/robust", opts.SensorSpec, false},
		}
	}
	chaosSeed := opts.ChaosSeed
	if chaosSeed == 0 {
		chaosSeed = defaultChaosSeed
	}

	tb := metrics.NewTable(
		"Thermal safety under corrupted telemetry (U=70%, identical fault plans)",
		"scenario", "faults", "rejected", "guard ticks",
		"limit violations (true)", "max true temp (°C)", "max obs temp (°C)",
		"dropped (watt-ticks)",
	)
	var clean, naive, robust *cluster.Result
	for _, v := range variants {
		cfg := cluster.PaperConfig(0.7)
		shortenFor(opts)(&cfg)
		cfg.NaiveSensing = v.naive
		if v.spec != "" {
			if _, err := cluster.ApplySensorChaos(&cfg, v.spec, chaosSeed); err != nil {
				return nil, err
			}
		}
		agg := &telemetry.Aggregator{Servers: 18}
		cfg.Sink = telemetry.Multi(agg, cfg.Sink)
		r, err := cluster.Run(cfg)
		if err != nil {
			return nil, err
		}
		tb.AddRow(v.name,
			fmt.Sprintf("%d", r.Stats.SensorFaults),
			fmt.Sprintf("%d", r.Stats.SensorRejected),
			fmt.Sprintf("%d", r.Stats.SensorGuardTicks),
			fmt.Sprintf("%d", r.LimitViolationTicks),
			fmt.Sprintf("%.1f", r.MaxTemp),
			fmt.Sprintf("%.1f", r.MaxObsTemp),
			fmt.Sprintf("%.0f", r.DroppedWattTicks))
		switch {
		case v.spec == "":
			clean = r
		case v.naive:
			naive = r
		default:
			robust = r
		}
	}
	notes := []string{
		"identical sensor-fault plans per intensity: the naive and robust rows see the same corrupted readings, only the estimator differs",
		"robust estimation: median-of-window + residual gate against the RC-model one-step prediction; unhealthy sensors fall back to model prediction + guard band",
	}
	if clean != nil && naive != nil && robust != nil {
		notes = append(notes,
			fmt.Sprintf("safety headline: naive control violates the true 70 °C limit for %d server-ticks (max %.1f °C); the robust estimator holds it to %d violations (max %.1f °C, clean baseline %.1f °C)",
				naive.LimitViolationTicks, naive.MaxTemp,
				robust.LimitViolationTicks, robust.MaxTemp, clean.MaxTemp))
	}
	return &Result{Table: tb, Notes: notes}, nil
}
