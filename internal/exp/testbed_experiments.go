package exp

import (
	"fmt"

	"willow/internal/metrics"
	"willow/internal/power"
	"willow/internal/testbed"
)

func init() {
	register("table1", "Table I — utilization vs power consumption (testbed)", runTable1)
	register("table2", "Table II — application power profiles (testbed)", runTable2)
	register("fig14", "Fig. 14 — experimental estimation of c1 and c2", runFig14)
	register("fig15", "Fig. 15 — power supply variation (energy-deficient)", runFig15)
	register("fig16", "Fig. 16 — number of migrations (deficit run)", runFig16)
	register("fig17", "Fig. 17/18 — temperature time series and averages", runFig17)
	register("fig19", "Fig. 19 — power supply variation (energy-plenty)", runFig19)
	register("table3", "Table III — utilization of servers after consolidation", runTable3)
}

func samplesFor(opts Options) int {
	if opts.Quick {
		return 50
	}
	return 400
}

func runTable1(opts Options) (*Result, error) {
	rows, err := testbed.MeasureTableI(samplesFor(opts), opts.seed(1))
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		"Table I — utilization vs measured power (emulated testbed; reconstructed curve, see DESIGN.md §5)",
		"utilization %", "power (W)",
	)
	for _, r := range rows {
		tb.AddRow(fmt.Sprintf("%.0f", r.Util*100), fmt.Sprintf("%.1f", r.Watts))
	}
	return &Result{
		Table: tb,
		Notes: []string{
			fmt.Sprintf("power at 100%% utilization: %.1f W (paper: ≈232 W)", rows[10].Watts),
			"power is a continuously increasing, near-linear function of utilization (paper's observation)",
		},
	}, nil
}

func runTable2(opts Options) (*Result, error) {
	profiles, err := testbed.MeasureAppProfiles(samplesFor(opts), opts.seed(2))
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		"Table II — application power profiles",
		"application", "increase in power (W)",
	)
	var notes []string
	paper := map[string]float64{"A1": 8, "A2": 10, "A3": 15}
	for _, p := range profiles {
		tb.AddRow(p.Name, fmt.Sprintf("%.1f", p.Watts))
		notes = append(notes, fmt.Sprintf("%s: measured %.1f W (paper: %.0f W)", p.Name, p.Watts, paper[p.Name]))
	}
	return &Result{Table: tb, Notes: notes}, nil
}

func runFig14(opts Options) (*Result, error) {
	steps := 300
	if opts.Quick {
		steps = 80
	}
	res, err := testbed.CalibrateThermal(steps, opts.seed(3))
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		"Fig. 14 — least-squares estimation of the Eq. 1 constants from a (power, temperature) trace",
		"quantity", "true (emulated hw)", "fitted",
	)
	tb.AddRow("c1", fmt.Sprintf("%.4f", res.TrueC1), fmt.Sprintf("%.4f", res.C1))
	tb.AddRow("c2", fmt.Sprintf("%.4f", res.TrueC2), fmt.Sprintf("%.4f", res.C2))
	tb.AddRow("RMSE (°C/unit)", "-", fmt.Sprintf("%.4f", res.RMSE))
	return &Result{
		Table: tb,
		Notes: []string{
			fmt.Sprintf("fit recovers the hardware constants within %.1f%% / %.1f%% (paper fitted c1=0.2, c2=0.008 on its Dell hardware)",
				100*abs(res.C1-res.TrueC1)/res.TrueC1, 100*abs(res.C2-res.TrueC2)/res.TrueC2),
		},
	}, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func traceTable(title string, tr power.Trace) *metrics.Table {
	tb := metrics.NewTable(title, "time unit", "supply (W)")
	for i, v := range tr {
		tb.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%.0f", v))
	}
	return tb
}

func runFig15(Options) (*Result, error) {
	tr := power.DeficitTrace()
	return &Result{
		Table: traceTable("Fig. 15 — injected supply variation, energy-deficient scenario", tr),
		Notes: []string{
			fmt.Sprintf("mean %.0f W (≈ demand of three hosts at 60%% utilization), deep plunges at units 7, 12, 25", tr.Mean()),
		},
	}, nil
}

func runFig16(opts Options) (*Result, error) {
	r, err := testbed.DeficitRun(opts.seed(4))
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		"Fig. 16 — migrations per time unit under the Fig. 15 supply",
		"time unit", "supply (W)", "migrations",
	)
	tr := power.DeficitTrace()
	for u := 0; u < r.Units; u++ {
		tb.AddRow(fmt.Sprintf("%d", u), fmt.Sprintf("%.0f", tr[u]), fmt.Sprintf("%d", r.MigrationsPerUnit[u]))
	}
	quiet := true
	for u := 8; u <= 10; u++ {
		if r.MigrationsPerUnit[u] != 0 {
			quiet = false
		}
	}
	return &Result{
		Table: tb,
		Notes: []string{
			fmt.Sprintf("migration burst at the plunge (unit 7): %d migrations", r.MigrationsPerUnit[7]),
			fmt.Sprintf("no migrations while the deficit persists (units 8–10): %v (paper's decision-stability observation)", quiet),
			fmt.Sprintf("shed demand %.0f watt-ticks; ping-pongs %d", r.DroppedWattTicks, r.Stats.PingPongs),
		},
	}, nil
}

func runFig17(opts Options) (*Result, error) {
	r, err := testbed.DeficitRun(opts.seed(4))
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		"Fig. 17/18 — temperature per time unit (°C), deficit run",
		"time unit", "host A", "host B", "host C",
	)
	for u := 0; u < r.Units; u++ {
		tb.AddRow(fmt.Sprintf("%d", u),
			fmt.Sprintf("%.1f", r.TempSeries[0][u]),
			fmt.Sprintf("%.1f", r.TempSeries[1][u]),
			fmt.Sprintf("%.1f", r.TempSeries[2][u]))
	}
	return &Result{
		Table: tb,
		Notes: []string{
			fmt.Sprintf("mean temperatures A/B/C: %.1f / %.1f / %.1f °C; no host exceeded the 70 °C limit",
				r.MeanTemp[0], r.MeanTemp[1], r.MeanTemp[2]),
		},
	}, nil
}

func runFig19(Options) (*Result, error) {
	tr := power.PlentyTrace()
	return &Result{
		Table: traceTable("Fig. 19 — injected supply variation, energy-plenty scenario", tr),
		Notes: []string{
			fmt.Sprintf("mean %.0f W, close to the ~750 W needed for all three hosts at 100%% utilization", tr.Mean()),
		},
	}, nil
}

func runTable3(opts Options) (*Result, error) {
	r, err := testbed.PlentyRun(opts.seed(5))
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		"Table III — utilization of servers before and after consolidation",
		"server", "initial utilization %", "final utilization %", "asleep",
	)
	for i, name := range testbed.HostNames {
		tb.AddRow(name,
			fmt.Sprintf("%.0f", r.UtilInitial[i]*100),
			fmt.Sprintf("%.0f", r.UtilFinal[i]*100),
			fmt.Sprintf("%v", r.AsleepAtEnd[i]))
	}
	return &Result{
		Table: tb,
		Notes: []string{
			fmt.Sprintf("consolidation power savings: %.1f%% (paper: ≈27.5%%)", r.Savings()*100),
			fmt.Sprintf("host C drained to %.0f%% and deactivated; A and B stay within limits so C is never woken (paper's observation)", r.UtilFinal[2]*100),
		},
	}, nil
}
