package exp

// Parallel execution and seeded replications.
//
// Every experiment is an independent deterministic simulation: its only
// inputs are Options, and all randomness flows from dist.Source streams
// seeded by Options.Seed (or the experiment's registered default). That
// makes the fan-out trivial to reason about — RunMany schedules
// (experiment, replication) pairs on a bounded worker pool and writes
// each result into a preallocated slot, so the rendered output is
// byte-identical regardless of worker count or completion order.
//
// Replication seeds are drawn from a single SplitMix64 stream seeded by
// Options.Seed (default: replicationBase), indexed by replication
// number. Deriving by index — never by scheduling order — is what keeps
// N-replication runs deterministic under any parallelism.

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"willow/internal/dist"
	"willow/internal/metrics"
	"willow/internal/parallel"
)

// replicationBase seeds the replication seed stream when Options.Seed is
// zero. The constant spells "willow" in ASCII.
const replicationBase uint64 = 0x77696c6c6f77

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) replications() int {
	if o.Replications > 1 {
		return o.Replications
	}
	return 1
}

// ReplicationSeeds derives n per-replication seeds from one SplitMix64
// stream seeded with base. The result depends only on (base, n-index):
// seed i is the i-th output of the stream, re-drawn in the (1/2^64)
// case where it would be zero, since a zero Options.Seed means "use the
// experiment default" and would silently collapse the replication onto
// the unseeded run.
func ReplicationSeeds(base uint64, n int) []uint64 {
	src := dist.NewSource(base)
	seeds := make([]uint64, n)
	for i := range seeds {
		s := src.Uint64()
		for s == 0 {
			s = src.Uint64()
		}
		seeds[i] = s
	}
	return seeds
}

// RunMany executes the given experiments on a bounded worker pool
// (Options.Workers, default GOMAXPROCS) and returns results in ids
// order. With Options.Replications > 1 each experiment is fanned out
// into that many independently seeded runs, aggregated per experiment
// into a mean ± 95 % CI table; otherwise each result is byte-identical
// to a sequential Run with the same Options.
//
// The pool aborts on the first failure (reporting the lowest-indexed
// error) and stops scheduling new runs when ctx is cancelled; runs
// already in flight complete, since experiments do not observe ctx.
func RunMany(ctx context.Context, ids []string, opts Options) ([]*Result, error) {
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, err := Get(id)
		if err != nil {
			return nil, err
		}
		exps[i] = e
	}

	reps := opts.replications()
	seeds := ReplicationSeeds(opts.seed(replicationBase), reps)
	repResults := make([][]*Result, len(ids))
	for i := range repResults {
		repResults[i] = make([]*Result, reps)
	}

	err := parallel.ForEach(ctx, len(ids)*reps, opts.workers(), func(_ context.Context, t int) error {
		i, r := t/reps, t%reps
		ro := opts
		ro.Replications = 0
		ro.Workers = 0
		// A sink shared across the pool's concurrent tasks would race,
		// so each task gets its own from the EventSinks factory (or
		// none). The per-task stream stays deterministic: it depends
		// only on (experiment, seed), never on scheduling.
		ro.EventSink, ro.EventSinks = nil, nil
		if reps > 1 {
			ro.Seed = seeds[r]
		}
		if opts.EventSinks != nil {
			sink, err := opts.EventSinks(exps[i].ID, r)
			if err != nil {
				return fmt.Errorf("%s (replication %d): event sink: %w", exps[i].ID, r, err)
			}
			ro.EventSink = sink
		}
		res, err := exps[i].Run(ro)
		if cl, ok := ro.EventSink.(io.Closer); ok {
			if cerr := cl.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("event sink: %w", cerr)
			}
		}
		if err != nil {
			return fmt.Errorf("%s (replication %d): %w", exps[i].ID, r, err)
		}
		repResults[i][r] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make([]*Result, len(ids))
	for i := range out {
		if reps == 1 {
			out[i] = repResults[i][0]
			continue
		}
		agg, err := aggregateReplications(exps[i], repResults[i])
		if err != nil {
			return nil, err
		}
		out[i] = agg
	}
	return out, nil
}

// aggregateReplications folds N seeded runs of one experiment into a
// single Result: numeric cells that vary across replications become
// mean and 95 % CI half-width columns, stable cells pass through, and
// the first replication's notes are kept with their provenance marked.
func aggregateReplications(e Experiment, reps []*Result) (*Result, error) {
	tables := make([]*metrics.Table, len(reps))
	for i, r := range reps {
		tables[i] = r.Table
	}
	agg, err := metrics.AggregateTables(tables)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.ID, err)
	}
	agg.Title = fmt.Sprintf("%s — mean ± 95%% CI over %d replications", agg.Title, len(reps))
	notes := []string{
		fmt.Sprintf("%d seeded replications; varying numeric cells report the mean with a 95%% CI half-width", len(reps)),
	}
	for _, n := range reps[0].Notes {
		notes = append(notes, "rep[0]: "+n)
	}
	return &Result{Table: agg, Notes: notes}, nil
}
