package exp

import (
	"fmt"

	"willow/internal/baseline"
	"willow/internal/binpack"
	"willow/internal/cluster"
	"willow/internal/dist"
	"willow/internal/metrics"
	"willow/internal/power"
	"willow/internal/testbed"
)

func init() {
	register("prop-messages", "Property 3 — ≤2 control messages per link per Δ_D", runPropMessages)
	register("prop-stability", "Property 4 — decision stability / no ping-pong within Δf", runPropStability)
	register("prop-binpack", "Section IV-F — FFDLR bound 3/2·OPT+1 vs exact solver", runPropBinpack)
	register("ablation-margin", "Ablation — the P_min migration margin", runAblationMargin)
	register("ablation-local", "Ablation — locality preference / non-local escalation", runAblationLocal)
	register("ablation-hier", "Ablation — distributed hierarchy vs centralized control", runAblationHier)
}

func shortenFor(opts Options) func(*cluster.Config) {
	return func(c *cluster.Config) {
		if opts.Quick {
			c.Warmup = 40
			c.Ticks = 140
		} else {
			c.Warmup = 80
			c.Ticks = 320
		}
		if opts.Seed != 0 {
			c.Seed = opts.Seed
		}
		if opts.PolicySpec != "" {
			c.Policy = opts.PolicySpec
		}
		c.Sink = opts.EventSink
	}
}

// runPropMessages stresses the hierarchy with a volatile supply and
// verifies no link ever carries more than two control messages per tick.
func runPropMessages(opts Options) (*Result, error) {
	cfg := cluster.PaperConfig(0.6)
	shortenFor(opts)(&cfg)
	cfg.Supply = power.Sine{Base: 6800, Amplitude: 1800, Period: 13}
	r, err := cluster.Run(cfg)
	if err != nil {
		return nil, err
	}
	ticks := int64(cfg.Ticks)
	links := int64(26) // 27 nodes - root
	tb := metrics.NewTable(
		"Property 3 — control message accounting over a volatile-supply run",
		"quantity", "value",
	)
	tb.AddRow("ticks", fmt.Sprintf("%d", ticks))
	tb.AddRow("tree links", fmt.Sprintf("%d", links))
	tb.AddRow("upward messages", fmt.Sprintf("%d", r.Stats.MessagesUp))
	tb.AddRow("downward messages", fmt.Sprintf("%d", r.Stats.MessagesDown))
	tb.AddRow("max messages on any link in any tick", fmt.Sprintf("%d", r.Stats.MaxLinkMessagesPerTick))
	ok := r.Stats.MaxLinkMessagesPerTick <= 2
	if !ok {
		return nil, fmt.Errorf("exp: Property 3 violated: %d messages on a link", r.Stats.MaxLinkMessagesPerTick)
	}
	return &Result{
		Table: tb,
		Notes: []string{fmt.Sprintf("bound holds: max %d ≤ 2 messages per link per Δ_D", r.Stats.MaxLinkMessagesPerTick)},
	}, nil
}

// runPropStability runs the deficit scenario and checks the paper's
// stability observations: zero ping-pongs, and no migration activity in
// the windows following a settled decision.
func runPropStability(opts Options) (*Result, error) {
	seeds := []uint64{1, 2, 3, 4, 5}
	if opts.Quick {
		seeds = seeds[:2]
	}
	tb := metrics.NewTable(
		"Property 4 — stability of the deficit-run decisions across seeds",
		"seed", "migrations", "ping-pongs", "quiet during persisting deficit",
	)
	var notes []string
	for _, seed := range seeds {
		r, err := testbed.DeficitRun(seed)
		if err != nil {
			return nil, err
		}
		quiet := true
		for u := 8; u <= 10; u++ {
			if r.MigrationsPerUnit[u] != 0 {
				quiet = false
			}
		}
		if r.Stats.PingPongs != 0 {
			return nil, fmt.Errorf("exp: ping-pong observed with seed %d", seed)
		}
		tb.AddRow(fmt.Sprintf("%d", seed),
			fmt.Sprintf("%d", len(r.Stats.Migrations)),
			fmt.Sprintf("%d", r.Stats.PingPongs),
			fmt.Sprintf("%v", quiet))
	}
	notes = append(notes, "zero ping-pong migrations in every run (paper: none observed for Δf < 50·Δ_D)")
	return &Result{Table: tb, Notes: notes}, nil
}

// runPropBinpack measures FFDLR against the exact solver on random
// instances and reports the worst observed capacity ratio, checking the
// 3/2·OPT+1 guarantee.
func runPropBinpack(opts Options) (*Result, error) {
	trials := 150
	if opts.Quick {
		trials = 30
	}
	src := dist.NewSource(opts.seed(17))
	sizes := []float64{0.25, 0.4, 0.7, 1}
	worst := 0.0
	var worstOpt, worstHeur float64
	violations := 0
	for i := 0; i < trials; i++ {
		n := 2 + src.Intn(9)
		items := make([]float64, n)
		for j := range items {
			items[j] = src.Uniform(0.02, 1)
		}
		opt, err := binpack.Exact(items, sizes)
		if err != nil {
			return nil, err
		}
		heur, err := binpack.FFDLR(items, sizes)
		if err != nil {
			return nil, err
		}
		if heur.TotalCapacity > 1.5*opt.TotalCapacity+1+1e-9 {
			violations++
		}
		if ratio := heur.TotalCapacity / opt.TotalCapacity; ratio > worst {
			worst, worstOpt, worstHeur = ratio, opt.TotalCapacity, heur.TotalCapacity
		}
	}
	tb := metrics.NewTable(
		"Section IV-F — FFDLR vs optimal on random variable-sized instances",
		"quantity", "value",
	)
	tb.AddRow("trials", fmt.Sprintf("%d", trials))
	tb.AddRow("bound (3/2·OPT+1) violations", fmt.Sprintf("%d", violations))
	tb.AddRow("worst capacity ratio", fmt.Sprintf("%.3f (%.2f vs OPT %.2f)", worst, worstHeur, worstOpt))
	if violations > 0 {
		return nil, fmt.Errorf("exp: FFDLR bound violated %d times", violations)
	}
	return &Result{
		Table: tb,
		Notes: []string{fmt.Sprintf("guarantee holds on all %d instances; worst ratio %.3f", trials, worst)},
	}, nil
}

// ablationTable compares two variants on the standard sweep point.
func ablationTable(title string, opts Options, u float64, a, b baseline.Variant) (*Result, map[baseline.Variant]*cluster.Result, error) {
	res, err := baseline.Compare([]baseline.Variant{a, b}, u, shortenFor(opts))
	if err != nil {
		return nil, nil, err
	}
	tb := metrics.NewTable(title,
		"variant", "migrations", "local", "dropped (watt-ticks)", "energy served", "migration share",
	)
	for _, v := range []baseline.Variant{a, b} {
		r := res[v]
		tb.AddRow(string(v),
			fmt.Sprintf("%d", len(r.Stats.Migrations)),
			fmt.Sprintf("%d", r.Stats.LocalMigrations),
			fmt.Sprintf("%.0f", r.DroppedWattTicks),
			fmt.Sprintf("%.0f", r.TotalEnergy),
			fmt.Sprintf("%.5f", r.MigrationShare))
	}
	return &Result{Table: tb}, res, nil
}

func runAblationMargin(opts Options) (*Result, error) {
	result, res, err := ablationTable(
		"Ablation — removing the P_min margin", opts, 0.6, baseline.Willow, baseline.NoMargin)
	if err != nil {
		return nil, err
	}
	w, nm := res[baseline.Willow], res[baseline.NoMargin]
	result.Notes = []string{
		fmt.Sprintf("without the margin the controller migrates %d times vs %d with it — the hysteresis the paper's P_min buys",
			len(nm.Stats.Migrations), len(w.Stats.Migrations)),
	}
	return result, nil
}

func runAblationLocal(opts Options) (*Result, error) {
	result, res, err := ablationTable(
		"Ablation — restricting migrations to siblings", opts, 0.75, baseline.Willow, baseline.LocalOnly)
	if err != nil {
		return nil, err
	}
	w, lo := res[baseline.Willow], res[baseline.LocalOnly]
	result.Notes = []string{
		fmt.Sprintf("local-only drops %.0f watt-ticks vs %.0f for full Willow — cross-rack imbalance needs non-local escalation",
			lo.DroppedWattTicks, w.DroppedWattTicks),
	}
	return result, nil
}

func runAblationHier(opts Options) (*Result, error) {
	result, res, err := ablationTable(
		"Ablation — distributed hierarchy vs centralized controller", opts, 0.6, baseline.Willow, baseline.Centralized)
	if err != nil {
		return nil, err
	}
	w, c := res[baseline.Willow], res[baseline.Centralized]
	ratio := w.TotalEnergy / c.TotalEnergy
	result.Notes = []string{
		fmt.Sprintf("energy served ratio distributed/centralized = %.3f — solution quality matches (paper's Property 2), while the hierarchy caps per-link message load", ratio),
	}
	return result, nil
}
