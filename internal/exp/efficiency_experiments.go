package exp

import (
	"fmt"

	"willow/internal/cluster"
	"willow/internal/metrics"
	"willow/internal/power"
)

func init() {
	register("efficiency", "Energy scoreboard — work per joule across demand shapes", runEfficiency)
}

// runEfficiency compares the fleet's energy efficiency across demand
// shapes on identical seeds: the same applications, topology and
// controller parameters, with only the demand (or supply) envelope
// changing. The scoreboard is the energy accounting layer's cumulative
// figures — joules consumed, useful work delivered, demand shed, heat
// dissipated — and the derived work-per-joule ratio, which is what the
// adaptive control is ultimately spending or saving.
func runEfficiency(opts Options) (*Result, error) {
	type scenario struct {
		name   string
		mutate func(*cluster.Config)
	}
	scenarios := []scenario{
		// The baseline: flat demand against the rated constant supply.
		{"steady", func(c *cluster.Config) {}},
		// A day/night swing around the same mean.
		{"diurnal", func(c *cluster.Config) {
			c.DemandProfile = power.Sine{Base: 1, Amplitude: 0.4, Period: 80}
		}},
		// A sudden 2.2× surge for two supply epochs, then back off.
		{"flash-crowd", func(c *cluster.Config) {
			c.DemandProfile = power.Trace{1, 1, 1, 2.2, 2.2, 1, 1, 0.9, 1, 1}
		}},
		// Steady demand under a renewable-shaped supply: the controller
		// must shed and consolidate through the troughs.
		{"green-supply", func(c *cluster.Config) {
			n := 1
			for _, f := range c.Fanout {
				n *= f
			}
			rated := float64(n) * c.ServerPower.Peak
			c.Supply = power.Sine{Base: rated * 0.75, Amplitude: rated * 0.3, Period: 90}
		}},
	}

	tb := metrics.NewTable(
		"Energy efficiency scoreboard across demand shapes (U=60%, identical seeds)",
		"scenario", "joules", "work (J)", "shed (J)", "heat (J)", "work/joule",
	)
	type row struct {
		name string
		wpj  float64
		shed float64
	}
	rows := make([]row, 0, len(scenarios))
	for _, sc := range scenarios {
		cfg := cluster.PaperConfig(0.6)
		shortenFor(opts)(&cfg)
		cfg.Core.EnergyEvents = true
		sc.mutate(&cfg)
		res, err := cluster.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("efficiency %s: %w", sc.name, err)
		}
		e := res.Energy.Fleet
		tb.AddRow(sc.name,
			fmt.Sprintf("%.0f", e.Joules),
			fmt.Sprintf("%.0f", e.WorkJoules),
			fmt.Sprintf("%.0f", e.ShedJoules),
			fmt.Sprintf("%.0f", e.HeatJoules),
			fmt.Sprintf("%.4f", e.WorkPerJoule()))
		rows = append(rows, row{sc.name, e.WorkPerJoule(), e.ShedJoules})
	}

	best, worst := rows[0], rows[0]
	for _, r := range rows[1:] {
		if r.wpj > best.wpj {
			best = r
		}
		if r.wpj < worst.wpj {
			worst = r
		}
	}
	return &Result{
		Table: tb,
		Notes: []string{
			fmt.Sprintf("work/joule spans %.4f (%s) to %.4f (%s) — the static floor dominates when demand sags",
				worst.wpj, worst.name, best.wpj, best.name),
			fmt.Sprintf("green-supply shed %.0f J vs %.0f J steady — the price of following renewable troughs",
				rows[3].shed, rows[0].shed),
		},
	}, nil
}
