package exp

import (
	"fmt"

	"willow/internal/cluster"
	"willow/internal/metrics"
	"willow/internal/telemetry"
)

func init() {
	register("resilience", "Control-plane failure tolerance — chaos schedules vs degraded-mode outcomes", runResilience)
}

// defaultChaosSeed seeds chaos-schedule expansion when the caller does
// not choose one ("chaos" in ASCII).
const defaultChaosSeed = 0x6368616f73

// runResilience sweeps fault intensity against control quality: seeded
// chaos schedules (server and PMU crashes, rack bursts, link-loss
// windows) run against the paper configuration with budget leases
// armed, measuring what resilience costs — dropped and stranded demand,
// degraded server-ticks — and what it buys: the thermal and circuit
// hard constraints hold no matter how much of the control plane is
// down, because degraded nodes decay held budgets toward autonomous
// safe floors instead of riding stale grants (degraded.go).
//
// With Options.ChaosSpec set the intensity sweep is replaced by that
// one schedule against the fail-free baseline.
func runResilience(opts Options) (*Result, error) {
	type variant struct {
		name string
		spec string
	}
	variants := []variant{
		{"fail-free", ""},
		{"light", "light"},
		{"medium", "medium"},
		{"heavy", "heavy"},
	}
	if opts.Quick {
		variants = []variant{{"fail-free", ""}, {"medium", "medium"}}
	}
	if opts.ChaosSpec != "" {
		variants = []variant{{"fail-free", ""}, {"custom", opts.ChaosSpec}}
	}
	chaosSeed := opts.ChaosSeed
	if chaosSeed == 0 {
		chaosSeed = defaultChaosSeed
	}

	tb := metrics.NewTable(
		"Degraded-mode outcomes under seeded chaos (U=60%, budget leases armed)",
		"schedule", "srv fails", "pmu fails", "lease expiries", "degraded ticks",
		"restarts", "dropped (watt-ticks)", "orphaned (watt-ticks)", "max temp (°C)",
	)
	var base, worst *cluster.Result
	for _, v := range variants {
		cfg := cluster.PaperConfig(0.6)
		shortenFor(opts)(&cfg)
		// Arm leases for every variant — including fail-free — so the
		// comparison isolates the faults, not the lease machinery.
		cfg.Core.BudgetLeaseTicks = 2 * cfg.Core.Eta1
		if v.spec != "" {
			if _, err := cluster.ApplyChaos(&cfg, v.spec, chaosSeed); err != nil {
				return nil, err
			}
		}
		agg := &telemetry.Aggregator{Servers: 18}
		cfg.Sink = telemetry.Multi(agg, cfg.Sink)
		r, err := cluster.Run(cfg)
		if err != nil {
			return nil, err
		}
		tb.AddRow(v.name,
			fmt.Sprintf("%d", r.Stats.Failures),
			fmt.Sprintf("%d", r.Stats.PMUFailures),
			fmt.Sprintf("%d", r.Stats.LeaseExpiries),
			fmt.Sprintf("%d", r.Stats.DegradedTicks),
			fmt.Sprintf("%d", r.Stats.Restarts),
			fmt.Sprintf("%.0f", r.DroppedWattTicks),
			fmt.Sprintf("%.0f", agg.OrphanWattTicks()),
			fmt.Sprintf("%.1f", r.MaxTemp))
		if v.spec == "" {
			base = r
		} else {
			worst = r
		}
	}
	notes := []string{
		"budget leases of 2·η1 ticks: a node silent for two supply windows degrades and decays its held budget toward min(thermal limit, circuit limit, static + fair share)",
	}
	if base != nil && worst != nil {
		notes = append(notes,
			fmt.Sprintf("hard constraints hold under chaos: max temperature %.1f °C vs %.1f °C fail-free (limit 70 °C) — degradation sheds demand (%.0f vs %.0f watt-ticks dropped) instead of overheating",
				worst.MaxTemp, base.MaxTemp,
				worst.DroppedWattTicks, base.DroppedWattTicks))
	}
	return &Result{Table: tb, Notes: notes}, nil
}
