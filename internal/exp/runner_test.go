package exp

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"willow/internal/dist"
)

// render flattens a Result into the bytes the CLI would print, so table
// and notes are compared exactly.
func render(r *Result) string {
	var sb strings.Builder
	sb.WriteString(r.Table.String())
	for _, n := range r.Notes {
		sb.WriteString("note: ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func runSequential(t *testing.T, opts Options) []*Result {
	t.Helper()
	out := make([]*Result, 0, len(IDs()))
	for _, id := range IDs() {
		res, err := Run(id, opts)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out = append(out, res)
	}
	return out
}

// TestRunManyMatchesSequential is the determinism contract that makes
// the parallel engine safe to ship: every registered experiment renders
// byte-identically when run twice sequentially and when run under
// RunMany with 4 workers. Experiments registered with Timing embed
// wall-clock cells and are held to shape equality instead.
func TestRunManyMatchesSequential(t *testing.T) {
	opts := Options{Quick: true}
	seq1 := runSequential(t, opts)
	seq2 := runSequential(t, opts)
	par, err := RunMany(context.Background(), IDs(), Options{Quick: true, Workers: 4})
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	if len(par) != len(seq1) {
		t.Fatalf("RunMany returned %d results for %d ids", len(par), len(seq1))
	}
	for i, id := range IDs() {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if e.Timing {
			// Wall-clock cells vary; the grid must not.
			for run, r := range []*Result{seq2[i], par[i]} {
				if len(r.Table.Rows) != len(seq1[i].Table.Rows) ||
					len(r.Table.Columns) != len(seq1[i].Table.Columns) {
					t.Errorf("%s: run %d changed table shape", id, run)
				}
			}
			continue
		}
		a, b, c := render(seq1[i]), render(seq2[i]), render(par[i])
		if a != b {
			t.Errorf("%s: two sequential runs differ:\n--- first\n%s--- second\n%s", id, a, b)
		}
		if a != c {
			t.Errorf("%s: RunMany differs from sequential:\n--- sequential\n%s--- parallel\n%s", id, a, c)
		}
	}
}

// TestRunManyWorkerCountInvariance pins the stronger claim the runner
// documents: the rendered output of a replicated run is identical for
// any worker count.
func TestRunManyWorkerCountInvariance(t *testing.T) {
	ids := []string{"fig9", "fig5", "prop-binpack"}
	var want []string
	for _, workers := range []int{1, 2, 7} {
		res, err := RunMany(context.Background(), ids, Options{Quick: true, Replications: 4, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := make([]string, len(res))
		for i, r := range res {
			got[i] = render(r)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("workers=%d: %s renders differently:\n--- workers=1\n%s--- now\n%s",
					workers, ids[i], want[i], got[i])
			}
		}
	}
}

// TestReplicationSeedsIndependent asserts the SplitMix64-derived
// replication streams do not overlap: the first 256 draws of 16 streams
// are pairwise distinct (any shared prefix segment would collide), and
// derivation is a pure function of (base, index).
func TestReplicationSeedsIndependent(t *testing.T) {
	const streams, draws = 16, 256
	seeds := ReplicationSeeds(replicationBase, streams)
	if again := ReplicationSeeds(replicationBase, streams); fmt.Sprint(again) != fmt.Sprint(seeds) {
		t.Fatal("ReplicationSeeds is not deterministic")
	}
	seen := map[uint64]int{}
	for si, seed := range seeds {
		if seed == 0 {
			t.Fatalf("stream %d seeded with 0 (would fall back to the experiment default)", si)
		}
		src := dist.NewSource(seed)
		for d := 0; d < draws; d++ {
			v := src.Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("streams %d and %d share draw %#x — prefixes overlap", prev, si, v)
			}
			seen[v] = si
		}
	}
	if len(seen) != streams*draws {
		t.Fatalf("%d distinct draws, want %d", len(seen), streams*draws)
	}
}

// TestReplicationSeedOverride: Options.Seed deterministically re-bases
// the replication streams — same seed, same output; different seed,
// different output; and a 1-replication RunMany passes Seed through
// untouched so it stays byte-identical with Run.
func TestReplicationSeedOverride(t *testing.T) {
	run := func(seed uint64, reps int) string {
		res, err := RunMany(context.Background(), []string{"fig9"}, Options{Quick: true, Seed: seed, Replications: reps})
		if err != nil {
			t.Fatalf("seed=%d reps=%d: %v", seed, reps, err)
		}
		return render(res[0])
	}
	if run(42, 3) != run(42, 3) {
		t.Error("same Seed produced different replicated output")
	}
	if run(42, 3) == run(43, 3) {
		t.Error("different Seed produced identical replicated output")
	}
	seq, err := Run("fig9", Options{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := run(7, 1); got != render(seq) {
		t.Errorf("1-replication RunMany altered the Seed path:\n--- Run\n%s--- RunMany\n%s", render(seq), got)
	}
	base := ReplicationSeeds(42, 3)
	if override := ReplicationSeeds(replicationBase, 3); fmt.Sprint(base) == fmt.Sprint(override) {
		t.Error("Seed base does not re-derive the stream")
	}
}

func TestRunManyAggregatesReplications(t *testing.T) {
	res, err := RunMany(context.Background(), []string{"fig9"}, Options{Quick: true, Replications: 5})
	if err != nil {
		t.Fatal(err)
	}
	tb := res[0].Table
	if !strings.Contains(tb.Title, "5 replications") {
		t.Errorf("aggregate title %q does not mention the replication count", tb.Title)
	}
	var hasMean, hasCI bool
	for _, c := range tb.Columns {
		hasMean = hasMean || strings.Contains(c, "(mean)")
		hasCI = hasCI || strings.Contains(c, "±95% CI")
	}
	if !hasMean || !hasCI {
		t.Errorf("aggregate columns %v lack mean/CI pair", tb.Columns)
	}
	single, err := Run("fig9", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(single.Table.Rows) {
		t.Errorf("aggregation changed row count: %d vs %d", len(tb.Rows), len(single.Table.Rows))
	}
	if len(res[0].Notes) == 0 || !strings.Contains(res[0].Notes[0], "replications") {
		t.Errorf("aggregate notes %v lack the replication summary", res[0].Notes)
	}
}

func TestRunManyUnknownID(t *testing.T) {
	if _, err := RunMany(context.Background(), []string{"fig9", "nope"}, Options{Quick: true}); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestRunManyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunMany(ctx, []string{"fig9"}, Options{Quick: true}); !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
}
