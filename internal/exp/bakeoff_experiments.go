package exp

import (
	"fmt"

	"willow/internal/cluster"
	"willow/internal/metrics"
	"willow/internal/power"
)

func init() {
	register("bakeoff", "Controller-policy bake-off — identical chaotic plans, all policies", runBakeoff)
	register("bakeoff-stress", "Controller-policy bake-off under supply swings at high load", runBakeoffStress)
}

// bakeoffPolicies are the contenders, in table order.
var bakeoffPolicies = []string{"willow", "integral", "mpc"}

// convWindow is the sustain requirement of the convergence metric: the
// fleet counts as converged at the first tick from which the worst
// per-server deficit stays within P_min for this many consecutive
// ticks.
const convWindow = 20

// bakeoffRow runs one policy over a fully materialized config (chaos
// and sensor plans already folded in) by stepping the machine manually,
// tracking convergence online, and returns the policy's scorecard
// cells. Every policy sees byte-identical (seed, chaos, sensor,
// demand) plans because the config is built once per variant from the
// same inputs and only the Policy string differs — policies draw no
// randomness, so the simulation streams stay aligned.
func bakeoffRow(cfg cluster.Config) (*cluster.Result, []string, error) {
	m, err := cluster.NewMachine(cfg)
	if err != nil {
		return nil, nil, err
	}
	pmin := m.Controller().Cfg.PMin
	conv := -1
	streak := 0
	for !m.Done() {
		m.Step()
		def, _, _ := m.Controller().LevelImbalance(0)
		if def <= pmin+1e-9 {
			streak++
			if streak >= convWindow && conv < 0 {
				conv = m.NextTick() - convWindow
			}
		} else {
			streak = 0
		}
	}
	if conv < 0 {
		conv = cfg.Ticks // never converged: score the full horizon
	}
	r := m.Result()
	cells := []string{
		fmt.Sprintf("%d", r.LimitViolationTicks),
		fmt.Sprintf("%.1f", r.MaxTemp),
		fmt.Sprintf("%.1f", r.Energy.Fleet.WorkJoules/1000),
		fmt.Sprintf("%.3f", r.Energy.Fleet.WorkPerJoule()),
		fmt.Sprintf("%d", r.DemandMigrations+r.ConsolidationMigrations),
		fmt.Sprintf("%d", conv),
	}
	return r, cells, nil
}

// runBakeoff races every controller policy over identical seeded plans:
// the paper configuration at 70 % utilization under the "medium"
// machine-chaos schedule (server/PMU crashes, rack bursts, link loss)
// plus the "medium" sensor-fault plan with the robust estimator armed.
// Chaos expansion is seeded independently of the workload seed, so
// replications vary demand under one fault plan, and every policy row
// sees the same faults at the same ticks.
//
// Scorecard per policy: true-temperature cap violations (server-ticks)
// and max true temperature, useful work (kJ) and work-per-joule,
// migration churn, and convergence time (first tick from which the
// worst server deficit stays within P_min for 20 consecutive ticks).
//
// The run errors if integral or mpc violates the true 70 °C limit:
// both clamp their caps to the Eq. 3 envelope, so with safe-side
// sensing their safety must match the paper controller's.
func runBakeoff(opts Options) (*Result, error) {
	chaosSeed := opts.ChaosSeed
	if chaosSeed == 0 {
		chaosSeed = defaultChaosSeed
	}
	tb := metrics.NewTable(
		"Controller-policy bake-off (U=70%, medium chaos + medium sensor faults, robust sensing)",
		"policy", "violations (true)", "max true temp (°C)",
		"work (kJ)", "work/J", "migrations", "convergence (ticks)",
	)
	notes := []string{
		"identical plans per row: same seed, same chaos schedule, same sensor faults, same demand — only the controller policy differs",
		fmt.Sprintf("convergence = first tick from which max server deficit stays within P_min for %d consecutive ticks", convWindow),
	}
	for _, pol := range bakeoffPolicies {
		cfg := cluster.PaperConfig(0.7)
		shortenFor(opts)(&cfg)
		cfg.Policy = pol
		if _, err := cluster.ApplyChaos(&cfg, "medium", chaosSeed); err != nil {
			return nil, err
		}
		if _, err := cluster.ApplySensorChaos(&cfg, "medium", chaosSeed); err != nil {
			return nil, err
		}
		r, cells, err := bakeoffRow(cfg)
		if err != nil {
			return nil, err
		}
		if pol != "willow" && r.LimitViolationTicks > 0 {
			return nil, fmt.Errorf("bakeoff: policy %q violated the true thermal limit for %d server-ticks (max %.1f °C) under the sensor-chaos plan",
				pol, r.LimitViolationTicks, r.MaxTemp)
		}
		tb.AddRow(append([]string{pol}, cells...)...)
		if pol == "willow" {
			notes = append(notes, fmt.Sprintf("willow baseline: %d violations, %.3f work/J, %d migrations",
				r.LimitViolationTicks, r.Energy.Fleet.WorkPerJoule(),
				r.DemandMigrations+r.ConsolidationMigrations))
		}
	}
	return &Result{Table: tb, Notes: notes}, nil
}

// runBakeoffStress is the demand-side counterpart: 85 % utilization
// under a swinging sine supply with the medium machine-chaos schedule
// and clean sensors. Here the policies differ most in how budget
// division and migration triggers track the moving supply — cap
// violations stay zero for everyone (sensors tell the truth), so the
// table reads on throughput, churn and convergence.
func runBakeoffStress(opts Options) (*Result, error) {
	chaosSeed := opts.ChaosSeed
	if chaosSeed == 0 {
		chaosSeed = defaultChaosSeed
	}
	tb := metrics.NewTable(
		"Controller-policy bake-off under supply swings (U=85%, sine supply, medium chaos)",
		"policy", "violations (true)", "max true temp (°C)",
		"work (kJ)", "work/J", "migrations", "convergence (ticks)",
	)
	notes := []string{
		"sine supply: base 80 % of rated, ±25 % swing, period 24 ticks — the budget chases the trough while demand pushes the ceiling",
	}
	for _, pol := range bakeoffPolicies {
		cfg := cluster.PaperConfig(0.85)
		shortenFor(opts)(&cfg)
		cfg.Policy = pol
		rated := 18 * cfg.ServerPower.Peak
		cfg.Supply = power.Sine{Base: rated * 0.8, Amplitude: rated * 0.25, Period: 24}
		if _, err := cluster.ApplyChaos(&cfg, "medium", chaosSeed); err != nil {
			return nil, err
		}
		_, cells, err := bakeoffRow(cfg)
		if err != nil {
			return nil, err
		}
		tb.AddRow(append([]string{pol}, cells...)...)
	}
	return &Result{Table: tb, Notes: notes}, nil
}
