package exp

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"willow/internal/telemetry"
)

// TestEventStreamsWorkerInvariant is the telemetry determinism
// property: the JSONL event stream of every (experiment, replication)
// task produced through RunMany is byte-identical whatever the worker
// count. Each task owns a private sink, its stream depends only on
// (experiment, seed), and fig9's sweep itself fans out concurrent
// simulations internally (cluster.RunAll) — so this also covers the
// buffer-and-replay ordering inside a single run.
func TestEventStreamsWorkerInvariant(t *testing.T) {
	collect := func(workers int) map[string]string {
		var mu sync.Mutex
		bufs := map[string]*bytes.Buffer{}
		opts := Options{
			Quick:        true,
			Replications: 3,
			Workers:      workers,
			EventSinks: func(id string, rep int) (telemetry.Sink, error) {
				buf := &bytes.Buffer{}
				mu.Lock()
				bufs[fmt.Sprintf("%s.rep%d", id, rep)] = buf
				mu.Unlock()
				return telemetry.NewWriter(buf), nil
			},
		}
		if _, err := RunMany(context.Background(), []string{"fig9"}, opts); err != nil {
			t.Fatal(err)
		}
		out := make(map[string]string, len(bufs))
		for k, b := range bufs {
			out[k] = b.String()
		}
		return out
	}

	base := collect(1)
	if len(base) != 3 {
		t.Fatalf("got %d streams, want 3", len(base))
	}
	for k, v := range base {
		if v == "" {
			t.Fatalf("stream %s is empty", k)
		}
		if evs, err := telemetry.ReadAll(bytes.NewReader([]byte(v))); err != nil || len(evs) == 0 {
			t.Fatalf("stream %s does not decode: %d events, err %v", k, len(evs), err)
		}
	}
	for _, workers := range []int{4, 8} {
		got := collect(workers)
		for k := range base {
			if got[k] != base[k] {
				t.Errorf("stream %s differs between workers=1 and workers=%d", k, workers)
			}
		}
	}
}

// TestChaosEventStreamsWorkerInvariant extends the determinism property
// to fault injection: a mid-tree PMU kill/repair chaos run (the
// resilience experiment) must also produce byte-identical event streams
// for 1, 4 and 8 workers. Leases, degraded decays, pipe losses and
// repair resyncs all draw from the same forked SplitMix64 streams as
// the fail-free path, so concurrency must not reorder them.
func TestChaosEventStreamsWorkerInvariant(t *testing.T) {
	collect := func(workers int) map[string]string {
		var mu sync.Mutex
		bufs := map[string]*bytes.Buffer{}
		opts := Options{
			Quick:        true,
			Replications: 3,
			Workers:      workers,
			ChaosSpec:    "medium",
			EventSinks: func(id string, rep int) (telemetry.Sink, error) {
				buf := &bytes.Buffer{}
				mu.Lock()
				bufs[fmt.Sprintf("%s.rep%d", id, rep)] = buf
				mu.Unlock()
				return telemetry.NewWriter(buf), nil
			},
		}
		if _, err := RunMany(context.Background(), []string{"resilience"}, opts); err != nil {
			t.Fatal(err)
		}
		out := make(map[string]string, len(bufs))
		for k, b := range bufs {
			out[k] = b.String()
		}
		return out
	}

	base := collect(1)
	if len(base) != 3 {
		t.Fatalf("got %d streams, want 3", len(base))
	}
	sawDegraded := false
	for k, v := range base {
		evs, err := telemetry.ReadAll(bytes.NewReader([]byte(v)))
		if err != nil || len(evs) == 0 {
			t.Fatalf("stream %s does not decode: %d events, err %v", k, len(evs), err)
		}
		for _, ev := range evs {
			if ev.Kind == telemetry.KindDegraded {
				sawDegraded = true
				break
			}
		}
	}
	if !sawDegraded {
		t.Error("no degraded events in any chaos stream — schedule injected nothing")
	}
	for _, workers := range []int{4, 8} {
		got := collect(workers)
		for k := range base {
			if got[k] != base[k] {
				t.Errorf("stream %s differs between workers=1 and workers=%d", k, workers)
			}
		}
	}
}
