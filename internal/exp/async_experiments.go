package exp

import (
	"fmt"

	"willow/internal/cluster"
	"willow/internal/metrics"
	"willow/internal/power"
)

func init() {
	register("ext-async", "Section V-A1 empirically — stale reports destabilize decisions", runExtAsync)
	register("ext-latency", "QoS in response-time terms — M/G/1-PS latency under deficits", runExtLatency)
}

// runExtAsync removes the paper's synchrony assumption: demand reports
// take ReportLatency ticks per level (and optionally get lost), so
// decisions run on stale views. Section V-A1 argues Δ_D must be much
// larger than the propagation time ("say, 10 times hα") to avoid
// instabilities; this experiment shows what happens on both sides of
// that rule.
func runExtAsync(opts Options) (*Result, error) {
	run := func(latency int, loss float64) (*cluster.Result, error) {
		cfg := cluster.PaperConfig(0.6)
		shortenFor(opts)(&cfg)
		cfg.Supply = power.Sine{Base: 6800, Amplitude: 1600, Period: 17}
		cfg.Core.ReportLatency = latency
		cfg.Core.ReportLoss = loss
		return cluster.Run(cfg)
	}
	type point struct {
		latency int
		loss    float64
	}
	points := []point{{0, 0}, {1, 0}, {2, 0}, {4, 0}, {8, 0}, {1, 0.3}}
	if opts.Quick {
		points = []point{{0, 0}, {4, 0}}
	}
	tb := metrics.NewTable(
		"Decision quality vs report staleness (h=3 levels; staleness at the root = 3×latency ticks)",
		"latency (ticks/level)", "report loss", "migrations", "dropped (watt-ticks)", "SLO miss %",
	)
	var base, worst *cluster.Result
	for _, p := range points {
		r, err := run(p.latency, p.loss)
		if err != nil {
			return nil, err
		}
		tb.AddRow(fmt.Sprintf("%d", p.latency), fmt.Sprintf("%.0f%%", p.loss*100),
			fmt.Sprintf("%d", len(r.Stats.Migrations)),
			fmt.Sprintf("%.0f", r.DroppedWattTicks),
			fmt.Sprintf("%.2f", r.SLOMissFraction*100))
		if p.latency == 0 && p.loss == 0 {
			base = r
		}
		if p.loss == 0 && (worst == nil || r.DroppedWattTicks > worst.DroppedWattTicks) {
			worst = r
		}
	}
	notes := []string{
		"latency 0 is the paper's δ ≪ Δ_D regime (reports land within the window they were sent)",
	}
	if base != nil && worst != nil && worst != base {
		notes = append(notes, fmt.Sprintf(
			"with stale reports the controller churns (%d migrations vs %d) and sheds %.0fx more demand — the instability §V-A1's Δ_D ≥ 10·h·α rule is designed to avoid",
			len(worst.Stats.Migrations), len(base.Stats.Migrations),
			worst.DroppedWattTicks/base.DroppedWattTicks))
	}
	return &Result{Table: tb, Notes: notes}, nil
}

// runExtLatency evaluates QoS the way users feel it: mean request
// slowdown (M/G/1-PS) and SLO misses under a deficit-prone supply,
// Willow against the no-control floor. The paper claims Willow's goal
// "is to minimize QoS impact by dynamic energy allocation and task
// migrations" (Section VI) — this quantifies it.
func runExtLatency(opts Options) (*Result, error) {
	run := func(noControl bool) (*cluster.Result, error) {
		cfg := cluster.PaperConfig(0.55)
		shortenFor(opts)(&cfg)
		// Repeated dips to ~70 % of the fleet's rating.
		cfg.Supply = power.Trace{8100, 8100, 5700, 5700, 8100, 6100, 8100, 5700, 8100, 8100}
		if noControl {
			cfg.Core.PMin = 1e12
			cfg.Core.ConsolidateBelow = 1e-12
		}
		return cluster.Run(cfg)
	}
	willow, err := run(false)
	if err != nil {
		return nil, err
	}
	frozen, err := run(true)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		"Request latency under a deficit-prone supply (M/G/1-PS, SLO = 10x stretch)",
		"variant", "mean stretch", "p95 stretch", "SLO miss %", "dropped (watt-ticks)",
	)
	tb.AddRow("willow",
		fmt.Sprintf("%.2f", willow.MeanStretch),
		fmt.Sprintf("%.1f", willow.StretchP95),
		fmt.Sprintf("%.2f", willow.SLOMissFraction*100),
		fmt.Sprintf("%.0f", willow.DroppedWattTicks))
	tb.AddRow("no-control",
		fmt.Sprintf("%.2f", frozen.MeanStretch),
		fmt.Sprintf("%.1f", frozen.StretchP95),
		fmt.Sprintf("%.2f", frozen.SLOMissFraction*100),
		fmt.Sprintf("%.0f", frozen.DroppedWattTicks))
	return &Result{
		Table: tb,
		Notes: []string{
			fmt.Sprintf("the latency–power trade of §I, quantified: Willow drops %.1fx less demand (%.0f vs %.0f watt-ticks) by consolidating — but the packed servers run hot, so served requests stretch (mean %.1fx vs %.1fx)",
				safeRatio(frozen.DroppedWattTicks, willow.DroppedWattTicks),
				willow.DroppedWattTicks, frozen.DroppedWattTicks,
				willow.MeanStretch, frozen.MeanStretch),
			"no-control \"wins\" mean latency by dropping requests outright — a dropped request has no response time; pick your failure mode",
		},
	}, nil
}

func init() {
	register("ext-transfer", "Non-instantaneous VM migration — transfer latency effects", runExtTransfer)
}

// runExtTransfer makes migration take real time, as on the paper's
// VMware testbed: the decision happens in one window but the VM (and its
// demand) lands several windows later, with the destination's surplus
// reserved meanwhile. The sweep shows the control loop stays stable —
// no churn explosion, no lost applications — while QoS pays a modest
// price for the slower reaction.
func runExtTransfer(opts Options) (*Result, error) {
	run := func(latency int) (*cluster.Result, error) {
		cfg := cluster.PaperConfig(0.6)
		shortenFor(opts)(&cfg)
		cfg.Supply = power.Sine{Base: 6800, Amplitude: 1600, Period: 17}
		cfg.Core.MigrationLatency = latency
		return cluster.Run(cfg)
	}
	latencies := []int{0, 1, 2, 4, 8}
	if opts.Quick {
		latencies = []int{0, 4}
	}
	tb := metrics.NewTable(
		"Decision quality vs VM transfer latency (supply swings, U=60%)",
		"transfer latency (ticks)", "migrations", "aborted", "dropped (watt-ticks)", "SLO miss %", "ping-pongs",
	)
	var base, slowest *cluster.Result
	for _, l := range latencies {
		r, err := run(l)
		if err != nil {
			return nil, err
		}
		tb.AddRow(fmt.Sprintf("%d", l),
			fmt.Sprintf("%d", len(r.Stats.Migrations)),
			fmt.Sprintf("%d", r.Stats.AbortedTransfers),
			fmt.Sprintf("%.0f", r.DroppedWattTicks),
			fmt.Sprintf("%.2f", r.SLOMissFraction*100),
			fmt.Sprintf("%d", r.Stats.PingPongs))
		if l == 0 {
			base = r
		}
		slowest = r
	}
	return &Result{
		Table: tb,
		Notes: []string{
			fmt.Sprintf("the loop is robust to slow transfers: dropped demand stays within a few %% of the instantaneous case (%.0f vs %.0f watt-ticks at 8-tick transfers), zero ping-pongs, no churn explosion",
				base.DroppedWattTicks, slowest.DroppedWattTicks),
			"in-flight demand is discounted from deficits and reserved at destinations, so slow transfers cannot double-migrate or overbook",
		},
	}, nil
}
