package exp

import (
	"fmt"

	"willow/internal/cluster"
	"willow/internal/metrics"
	"willow/internal/thermal"
)

// sweepUtils returns the utilization grid of the Figs. 5–12 sweeps.
func sweepUtils(opts Options) []float64 {
	if opts.Quick {
		return []float64{0.2, 0.5, 0.8}
	}
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
}

// sweep runs the paper configuration over the utilization grid.
func sweep(opts Options) ([]*cluster.Result, error) {
	return cluster.UtilizationSweep(sweepUtils(opts), func(c *cluster.Config) {
		if opts.Quick {
			c.Warmup = 40
			c.Ticks = 140
		}
		if opts.Seed != 0 {
			c.Seed = opts.Seed
		}
		c.Sink = opts.EventSink
	})
}

func pct(u float64) string { return fmt.Sprintf("%.0f%%", u*100) }

func init() {
	register("fig4", "Fig. 4 — setting up the simulation thermal constants", runFig4)
	register("fig5", "Fig. 5 — average server power vs utilization (hot/cool zones)", runFig5)
	register("fig6", "Fig. 6 — average server temperature vs utilization", runFig6)
	register("fig7", "Fig. 7 — power saved per server by consolidation at U=40%", runFig7)
	register("fig9", "Fig. 9 — demand- vs consolidation-driven migrations", runFig9)
	register("fig10", "Fig. 10 — migration traffic normalized to network capacity", runFig10)
	register("fig11", "Fig. 11 — power demand of level-1 switches", runFig11)
	register("fig12", "Fig. 12 — migration cost in level-1 switches", runFig12)
}

// runFig4 reproduces the constant-selection exercise of Fig. 4: for
// candidate (c1, c2) pairs, the Eq. 3 power limit presented by a server
// over one adjustment window, as a function of ambient and current
// temperature. The paper picks c1 = 0.08, c2 = 0.05 because they present
// ~450 W (the server's rating) from a cold start at Ta = 25 °C and ~0 W
// at the thermal limit in a 45 °C ambient.
func runFig4(Options) (*Result, error) {
	const window = 1.29 // Δs pinned by the 450 W anchor (DESIGN.md §4)
	candidates := []struct{ c1, c2 float64 }{
		{0.04, 0.05}, {0.08, 0.05}, {0.08, 0.10}, {0.16, 0.05}, {0.2, 0.008},
	}
	tb := metrics.NewTable(
		"Fig. 4 — power limit (W) presented under Eq. 3, window Δs = 1.29",
		"c1", "c2", "cold @ Ta=25", "warm 50C @ Ta=25", "at limit @ Ta=45",
	)
	var chosenCold, chosenHot float64
	for _, cand := range candidates {
		cool := thermal.Model{C1: cand.c1, C2: cand.c2, Ambient: 25, Limit: 70}
		hot := thermal.Model{C1: cand.c1, C2: cand.c2, Ambient: 45, Limit: 70}
		cold := cool.PowerLimit(25, window)
		warm := cool.PowerLimit(50, window)
		atLimit := hot.PowerLimit(70, window)
		tb.AddRow(
			fmt.Sprintf("%.3f", cand.c1), fmt.Sprintf("%.3f", cand.c2),
			fmt.Sprintf("%.1f", cold), fmt.Sprintf("%.1f", warm), fmt.Sprintf("%.1f", atLimit),
		)
		if cand.c1 == 0.08 && cand.c2 == 0.05 {
			chosenCold, chosenHot = cold, atLimit
		}
	}
	return &Result{
		Table: tb,
		Notes: []string{
			fmt.Sprintf("paper's choice c1=0.08, c2=0.05: cold-start limit %.0f W (paper: ~450 W)", chosenCold),
			fmt.Sprintf("at the 70 °C limit in a 45 °C ambient the presented surplus is %.1f W (paper: ~0)", chosenHot),
		},
	}, nil
}

// zoneMeans averages a per-server metric over the cool zone (servers
// 1–14) and hot zone (servers 15–18).
func zoneMeans(vals []float64) (cool, hot float64) {
	for i := 0; i < 14; i++ {
		cool += vals[i] / 14
	}
	for i := 14; i < 18; i++ {
		hot += vals[i] / 4
	}
	return cool, hot
}

func runFig5(opts Options) (*Result, error) {
	results, err := sweep(opts)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		"Fig. 5 — average power consumption (W); Ta=25 °C servers 1–14, Ta=40 °C servers 15–18",
		"utilization", "cool-zone mean", "hot-zone mean",
	)
	var hotBelow int
	for _, r := range results {
		cool, hot := zoneMeans(r.MeanPower)
		tb.AddRow(pct(r.Config.Utilization), fmt.Sprintf("%.1f", cool), fmt.Sprintf("%.1f", hot))
		if hot < cool {
			hotBelow++
		}
	}
	return &Result{
		Table: tb,
		Notes: []string{fmt.Sprintf("hot-zone servers draw less power at %d/%d sweep points (paper: at all)", hotBelow, len(results))},
	}, nil
}

func runFig6(opts Options) (*Result, error) {
	results, err := sweep(opts)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		"Fig. 6 — average server temperature (°C)",
		"utilization", "cool-zone mean", "hot-zone mean", "gap",
	)
	var firstGap, lastGap float64
	for i, r := range results {
		cool, hot := zoneMeans(r.MeanTemp)
		tb.AddRow(pct(r.Config.Utilization),
			fmt.Sprintf("%.1f", cool), fmt.Sprintf("%.1f", hot), fmt.Sprintf("%.1f", hot-cool))
		if i == 0 {
			firstGap = hot - cool
		}
		lastGap = hot - cool
	}
	return &Result{
		Table: tb,
		Notes: []string{fmt.Sprintf("zone temperature gap shrinks from %.1f °C to %.1f °C as utilization rises (paper: near-uniform at high U)", firstGap, lastGap)},
	}, nil
}

func runFig7(opts Options) (*Result, error) {
	// Which servers dip under the consolidation threshold depends on the
	// random application mix, so average the per-server savings over
	// several workload realizations — one run sleeps only a server or
	// two; the ensemble shows the per-server distribution the paper
	// plots.
	seeds := []uint64{2011, 7, 19, 23, 42, 77, 101, 123}
	if opts.Quick {
		seeds = seeds[:3]
	}
	ensemble := func(util float64) ([]float64, []float64, error) {
		configs := make([]cluster.Config, len(seeds))
		for i, seed := range seeds {
			configs[i] = cluster.PaperConfig(util)
			if opts.Quick {
				configs[i].Warmup = 40
				configs[i].Ticks = 140
			}
			configs[i].Seed = opts.seed(seed)
			configs[i].Sink = opts.EventSink
		}
		results, err := cluster.RunAll(configs)
		if err != nil {
			return nil, nil, err
		}
		saved := make([]float64, 18)
		asleep := make([]float64, 18)
		for _, r := range results {
			for i := range saved {
				saved[i] += r.PowerSaved[i] / float64(len(seeds))
				asleep[i] += r.AsleepFraction[i] / float64(len(seeds))
			}
		}
		return saved, asleep, nil
	}
	saved, asleep, err := ensemble(0.4)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		fmt.Sprintf("Fig. 7 — power saved per server by consolidation at U=40%% (mean of %d workload realizations)", len(seeds)),
		"server", "saved (W)", "asleep fraction",
	)
	for i := range saved {
		tb.AddRow(fmt.Sprintf("%d", i+1), fmt.Sprintf("%.1f", saved[i]), fmt.Sprintf("%.2f", asleep[i]))
	}
	coolSaved, hotSaved := zoneMeans(saved)
	// At U=40 % our recalibrated thermal constants leave the hot zone
	// unconstrained (300 W sustainable vs ~261 W demand), so savings
	// follow the workload mix; the paper's hot-zone dominance appears at
	// the utilization where the thermal cap bites. Measure that too.
	saved30, _, err := ensemble(0.3)
	if err != nil {
		return nil, err
	}
	cool30, hot30 := zoneMeans(saved30)
	return &Result{
		Table: tb,
		Notes: []string{
			fmt.Sprintf("at U=40%%: hot-zone servers save %.1f W vs %.1f W in the cool zone (paper: maximum savings in the last four servers)", hotSaved, coolSaved),
			fmt.Sprintf("at U=30%% — where our thermal constants make the hot-zone cap bind — the paper's effect appears: hot zone saves %.1f W vs %.1f W (see EXPERIMENTS.md)", hot30, cool30),
		},
	}, nil
}

func runFig9(opts Options) (*Result, error) {
	results, err := sweep(opts)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		"Fig. 9 — migrations by cause",
		"utilization", "demand-driven", "consolidation-driven",
	)
	crossed := "no crossover observed"
	prevDom := ""
	for _, r := range results {
		tb.AddRow(pct(r.Config.Utilization),
			fmt.Sprintf("%d", r.DemandMigrations), fmt.Sprintf("%d", r.ConsolidationMigrations))
		dom := "consolidation"
		if r.DemandMigrations > r.ConsolidationMigrations {
			dom = "demand"
		}
		if prevDom == "consolidation" && dom == "demand" {
			crossed = fmt.Sprintf("dominance flips near %s (paper: around 50%%)", pct(r.Config.Utilization))
		}
		prevDom = dom
	}
	return &Result{Table: tb, Notes: []string{crossed}}, nil
}

func runFig10(opts Options) (*Result, error) {
	results, err := sweep(opts)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		"Fig. 10 — migration traffic normalized to maximum network traffic",
		"utilization", "share",
	)
	peakU, peakV := 0.0, -1.0
	for _, r := range results {
		tb.AddRow(pct(r.Config.Utilization), fmt.Sprintf("%.5f", r.MigrationShare))
		if r.MigrationShare > peakV {
			peakU, peakV = r.Config.Utilization, r.MigrationShare
		}
	}
	last := results[len(results)-1]
	return &Result{
		Table: tb,
		Notes: []string{
			fmt.Sprintf("migration traffic peaks at %s (paper: sudden increase around 50%%)", pct(peakU)),
			fmt.Sprintf("traffic falls off at the highest utilization (share %.5f at %s) — no surplus left to migrate into", last.MigrationShare, pct(last.Config.Utilization)),
		},
	}, nil
}

func runFig11(opts Options) (*Result, error) {
	results, err := sweep(opts)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		"Fig. 11 — mean power demand of the six level-1 switches (W)",
		"utilization", "sw1", "sw2", "sw3", "sw4", "sw5", "sw6",
	)
	var maxSpread float64
	for _, r := range results {
		cells := []string{pct(r.Config.Utilization)}
		lo, hi := r.SwitchPower[0], r.SwitchPower[0]
		for _, p := range r.SwitchPower {
			cells = append(cells, fmt.Sprintf("%.1f", p))
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
		tb.AddRow(cells...)
		if hi > 0 && (hi-lo)/hi > maxSpread {
			maxSpread = (hi - lo) / hi
		}
	}
	return &Result{
		Table: tb,
		Notes: []string{fmt.Sprintf("largest relative spread across switches %.0f%% (paper: power demand almost the same in all switches)", maxSpread*100)},
	}, nil
}

func runFig12(opts Options) (*Result, error) {
	results, err := sweep(opts)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		"Fig. 12 — migration traffic carried per level-1 switch (units)",
		"utilization", "sw1", "sw2", "sw3", "sw4", "sw5", "sw6", "total",
	)
	for _, r := range results {
		cells := []string{pct(r.Config.Utilization)}
		var total float64
		for _, v := range r.SwitchMigrationTraffic {
			cells = append(cells, fmt.Sprintf("%.0f", v))
			total += v
		}
		cells = append(cells, fmt.Sprintf("%.0f", total))
		tb.AddRow(cells...)
	}
	return &Result{
		Table: tb,
		Notes: []string{"per-switch migration cost follows the total migration trend of Fig. 10"},
	}, nil
}
