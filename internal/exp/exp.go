// Package exp regenerates every table and figure of the paper's
// evaluation (Section V). Each experiment has a stable identifier (e.g.
// "fig5", "table3"); Run executes one and returns its rows as a
// metrics.Table whose series mirror what the paper plots. The
// cmd/willow-exp binary and the repository's bench_test.go both drive
// this package, so the printed rows and the benchmarked work are
// identical.
package exp

import (
	"fmt"
	"sort"

	"willow/internal/metrics"
	"willow/internal/telemetry"
)

// Options tune experiment execution.
type Options struct {
	// Quick shrinks run lengths and sweep densities for smoke tests and
	// benchmarks; the shapes remain, the averages get noisier.
	Quick bool
	// Seed overrides the default deterministic seed when non-zero. Under
	// Replications > 1 it instead seeds the SplitMix64 stream that the
	// per-replication seeds are drawn from.
	Seed uint64
	// Replications, when > 1, makes RunMany execute each experiment that
	// many times with independent SplitMix64-derived seeds and aggregate
	// the runs into one mean ± 95 % CI table. 0 and 1 both mean a single
	// run whose output is byte-identical to Run.
	Replications int
	// Workers bounds RunMany's worker pool; 0 means GOMAXPROCS. Results
	// do not depend on it — only wall-clock time does.
	Workers int
	// EventSink, when non-nil, receives the controller telemetry stream
	// of every simulation the experiment runs, in a deterministic order
	// (sweep points replay in input order — see cluster.RunAll). It is
	// a single-run option: it must only be set on a direct Run call or
	// installed per task by RunMany via EventSinks; sharing one sink
	// across RunMany's concurrent tasks would race.
	EventSink telemetry.Sink
	// EventSinks, when non-nil, is called by RunMany once per
	// (experiment, replication) to create that task's private sink,
	// which is installed as the task's EventSink and closed (when it
	// implements io.Closer) after the task completes. This is how
	// replicated runs produce per-replication event files.
	EventSinks func(id string, replication int) (telemetry.Sink, error)
	// ChaosSpec, when non-empty, is a chaos schedule specification
	// (chaos.ParseSpec) for the experiments that inject faults — the
	// resilience experiment swaps its default intensity sweep for this
	// one spec. ChaosSeed seeds the schedule expansion (0 takes a fixed
	// default); it is deliberately independent of Seed so replications
	// vary the workload under an identical fault plan.
	ChaosSpec string
	ChaosSeed uint64
	// SensorSpec, when non-empty, is a sensor-fault specification
	// (sensor.ParseSpec) — the sensing experiment swaps its default
	// intensity ladder for this one spec. Expansion is seeded by
	// ChaosSeed, like ChaosSpec.
	SensorSpec string
	// PolicySpec, when non-empty, is a controller-policy specification
	// (policy.ParseSpec) applied to every simulation an experiment
	// runs — "" and "willow" are byte-identical. The bake-off family
	// ignores it: it always runs all policies side by side.
	PolicySpec string
}

func (o Options) seed(def uint64) uint64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return def
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the stable identifier (table/figure number).
	ID string
	// Title describes the paper artifact.
	Title string
	// Run executes the experiment.
	Run Runner
	// Timing marks experiments whose tables embed wall-clock
	// measurements. They are seeded like every other experiment but their
	// rendered cells legitimately vary run to run, so the determinism
	// contract (byte-identical output for equal Options) excludes them.
	Timing bool
}

// Runner executes an experiment and renders its result.
type Runner func(Options) (*Result, error)

// Result bundles an experiment's rendered table with the headline
// numbers EXPERIMENTS.md records.
type Result struct {
	Table *metrics.Table
	// Notes are headline observations ("savings = 27.5 %", "spike at
	// 50 % utilization") suitable for the paper-vs-measured record.
	Notes []string
}

// registry holds every experiment keyed by ID.
var registry = map[string]Experiment{}

func register(id, title string, run Runner) {
	if _, dup := registry[id]; dup {
		panic("exp: duplicate experiment id " + id)
	}
	registry[id] = Experiment{ID: id, Title: title, Run: run}
}

// registerTiming registers an experiment whose output embeds wall-clock
// measurements (see Experiment.Timing).
func registerTiming(id, title string, run Runner) {
	register(id, title, run)
	e := registry[id]
	e.Timing = true
	registry[id] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("exp: unknown experiment %q (try one of %v)", id, IDs())
	}
	return e, nil
}

// IDs returns all experiment identifiers, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given ID.
func Run(id string, opts Options) (*Result, error) {
	e, err := Get(id)
	if err != nil {
		return nil, err
	}
	return e.Run(opts)
}
