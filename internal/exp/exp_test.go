package exp

import (
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes every registered experiment in
// quick mode and checks each produces a non-empty table and notes.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel() // doubles as a race-detector stress of the fan-out path
			res, err := Run(id, Options{Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if res.Table == nil || len(res.Table.Rows) == 0 {
				t.Fatalf("%s: empty table", id)
			}
			if len(res.Notes) == 0 {
				t.Errorf("%s: no headline notes", id)
			}
			if out := res.Table.String(); !strings.Contains(out, res.Table.Columns[0]) {
				t.Errorf("%s: table does not render", id)
			}
		})
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig4", "fig5", "fig6", "fig7", "fig9", "fig10", "fig11", "fig12",
		"table1", "table2", "fig14", "fig15", "fig16", "fig17", "fig19", "table3",
		"prop-messages", "prop-stability", "prop-binpack",
		"prop-convergence", "prop-scaling", "prop-imbalance",
		"ablation-margin", "ablation-local", "ablation-hier",
		"ablation-granularity", "ablation-smoothing", "ablation-foresight",
		"ext-demandside",
		"ext-qos", "ext-cooling", "ext-ipc", "ext-device", "ext-idle",
		"ext-async", "ext-latency", "ext-transfer",
		"ext-hetero", "ext-variance", "ext-failure",
		"resilience", "sensing", "efficiency",
		"bakeoff", "bakeoff-stress",
	}
	ids := map[string]bool{}
	for _, id := range IDs() {
		ids[id] = true
	}
	for _, w := range want {
		if !ids[w] {
			t.Errorf("experiment %q missing from registry", w)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(IDs()), len(want))
	}
}

func TestGetUnknown(t *testing.T) {
	_, err := Get("nope")
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	// The message embeds the queried id and the full registry listing so a
	// typo on the CLI is self-correcting.
	if msg := err.Error(); !strings.Contains(msg, `"nope"`) {
		t.Errorf("error %q does not name the unknown id", msg)
	} else if !strings.Contains(msg, "fig5") || !strings.Contains(msg, "table3") {
		t.Errorf("error %q does not list the known ids", msg)
	}
	if _, err := Run("nope", Options{}); err == nil {
		t.Error("Run with unknown id succeeded")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate register did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "fig5") {
			t.Errorf("panic %v does not name the duplicate id", r)
		}
	}()
	// fig5 is registered by sim_experiments.go's init; the dup check runs
	// before any mutation, so the registry is untouched.
	register("fig5", "duplicate", func(Options) (*Result, error) { return nil, nil })
}

func TestSeedOverride(t *testing.T) {
	o := Options{}
	if got := o.seed(9); got != 9 {
		t.Errorf("default seed = %d", got)
	}
	o.Seed = 4
	if got := o.seed(9); got != 4 {
		t.Errorf("override seed = %d", got)
	}
}
