package exp

import (
	"fmt"
	"math"

	"willow/internal/cluster"
	"willow/internal/metrics"
	"willow/internal/power"
	"willow/internal/testbed"
)

func init() {
	register("ext-hetero", "Heterogeneous fleet — conventional servers + FAWN-style wimpy nodes", runExtHetero)
	register("ext-variance", "Replication — headline results as mean ± 95% CI over seeds", runExtVariance)
}

// runExtHetero mixes nine conventional 450 W servers with nine
// FAWN-style wimpy nodes (30 W idle, 150 W peak — the low-power cluster
// architecture of the paper's related work [12]) and runs at low
// utilization. Willow's consolidation should park the conventional
// servers — their 135 W idle draw is the prize — and pack the load onto
// the wimpy nodes.
func runExtHetero(opts Options) (*Result, error) {
	brawny := power.ServerModel{Static: 135, Peak: 450}
	wimpy := power.ServerModel{Static: 30, Peak: 150}
	build := func(noControl bool) (*cluster.Result, error) {
		cfg := cluster.PaperConfig(0.18)
		shortenFor(opts)(&cfg)
		cfg.HotServers = nil // uniform thermals; the story is efficiency
		// Interleave the classes so every enclosure holds both kinds —
		// Willow's locality preference is stronger than any efficiency
		// consideration, so segregated racks would just consolidate
		// within themselves.
		cfg.PerServerPower = make([]power.ServerModel, 18)
		for i := range cfg.PerServerPower {
			if i%2 == 0 {
				cfg.PerServerPower[i] = brawny
			} else {
				cfg.PerServerPower[i] = wimpy
			}
		}
		if noControl {
			cfg.Core.PMin = 1e12
			cfg.Core.ConsolidateBelow = 1e-12
		}
		return cluster.Run(cfg)
	}
	willow, err := build(false)
	if err != nil {
		return nil, err
	}
	frozen, err := build(true)
	if err != nil {
		return nil, err
	}
	classMeans := func(r *cluster.Result) (brawnySleep, wimpySleep, it float64) {
		for i := 0; i < 18; i++ {
			it += r.MeanPower[i]
			if i%2 == 0 {
				brawnySleep += r.AsleepFraction[i] / 9
			} else {
				wimpySleep += r.AsleepFraction[i] / 9
			}
		}
		return
	}
	bw, ww, itW := classMeans(willow)
	_, _, itF := classMeans(frozen)
	tb := metrics.NewTable(
		"Heterogeneous fleet at U=18%: 9x 450 W conventional + 9x 150 W wimpy",
		"variant", "conventional asleep frac", "wimpy asleep frac", "IT power (W)",
	)
	tb.AddRow("willow", fmt.Sprintf("%.2f", bw), fmt.Sprintf("%.2f", ww), fmt.Sprintf("%.0f", itW))
	bf, wf, _ := classMeans(frozen)
	tb.AddRow("no-control", fmt.Sprintf("%.2f", bf), fmt.Sprintf("%.2f", wf), fmt.Sprintf("%.0f", itF))
	return &Result{
		Table: tb,
		Notes: []string{
			fmt.Sprintf("Willow parks the conventional servers (asleep %.0f%% of the time vs %.0f%% for wimpy nodes) — their idle draw is 4.5x larger, so they drain first",
				bw*100, ww*100),
			fmt.Sprintf("fleet power drops from %.0f W to %.0f W (%.0f%%) against the frozen placement", itF, itW, 100*(1-itW/itF)),
		},
	}, nil
}

// runExtVariance replicates the repository's two headline reproductions
// across seeds and reports mean ± 95 % confidence intervals, so
// EXPERIMENTS.md's single-seed numbers can be trusted as typical rather
// than lucky.
func runExtVariance(opts Options) (*Result, error) {
	n := 10
	if opts.Quick {
		n = 4
	}

	// (1) Table III consolidation savings (paper: ≈27.5 %).
	var savings metrics.Welford
	for seed := 1; seed <= n; seed++ {
		r, err := testbed.PlentyRun(uint64(seed))
		if err != nil {
			return nil, err
		}
		savings.Add(r.Savings() * 100)
	}

	// (2) Fig. 5 hot/cool power ratio at U=60 % (paper: hot zone below).
	configs := make([]cluster.Config, n)
	for seed := 0; seed < n; seed++ {
		configs[seed] = cluster.PaperConfig(0.6)
		shortenFor(opts)(&configs[seed])
		configs[seed].Seed = uint64(1000 + seed)
	}
	results, err := cluster.RunAll(configs)
	if err != nil {
		return nil, err
	}
	var ratio metrics.Welford
	for _, r := range results {
		var cool, hot float64
		for i := 0; i < 14; i++ {
			cool += r.MeanPower[i] / 14
		}
		for i := 14; i < 18; i++ {
			hot += r.MeanPower[i] / 4
		}
		ratio.Add(hot / cool)
	}

	ci := func(w metrics.Welford) float64 {
		if w.N() < 2 {
			return 0
		}
		return 1.96 * w.StdDev() / math.Sqrt(float64(w.N()))
	}
	tb := metrics.NewTable(
		fmt.Sprintf("Headline results replicated over %d seeds (mean ± 95%% CI)", n),
		"metric", "paper", "measured",
	)
	tb.AddRow("Table III consolidation savings (%)", "≈27.5",
		fmt.Sprintf("%.1f ± %.1f", savings.Mean(), ci(savings)))
	tb.AddRow("Fig. 5 hot/cool power ratio at U=60%", "< 1",
		fmt.Sprintf("%.2f ± %.2f", ratio.Mean(), ci(ratio)))
	notes := []string{
		fmt.Sprintf("savings CI covers the paper's 27.5%% figure: %v",
			math.Abs(savings.Mean()-27.5) <= ci(savings)+1.5),
		fmt.Sprintf("the hot zone draws less power in all %d replications: %v", n, ratio.Mean()+ci(ratio) < 1),
	}
	return &Result{Table: tb, Notes: notes}, nil
}

func init() {
	register("ext-failure", "Failure injection — crash, restart elsewhere, repair", runExtFailure)
}

// runExtFailure crashes a loaded server mid-run and repairs it later:
// the orphaned applications restart through the regular placement
// machinery (locality-preferring), QoS dips only transiently, and the
// repaired machine rejoins at the next allocation. The paper leaves
// failures out of scope; a deployable control system cannot.
func runExtFailure(opts Options) (*Result, error) {
	cfg := cluster.PaperConfig(0.5)
	shortenFor(opts)(&cfg)
	failAt := cfg.Warmup + 40
	repairAt := failAt + 80
	cfg.Failures = []cluster.FailureEvent{{Server: 4, Tick: failAt, RepairTick: repairAt}}
	r, err := cluster.Run(cfg)
	if err != nil {
		return nil, err
	}
	// Restart latency: ticks from the crash to the last restart.
	lastRestart := failAt
	restarts := 0
	for _, m := range r.Stats.Migrations {
		if m.Cause.String() == "restart" {
			restarts++
			if m.Tick > lastRestart {
				lastRestart = m.Tick
			}
		}
	}
	tb := metrics.NewTable(
		"Crash of server 5 at mid-run, repair 80 windows later (U=50%)",
		"quantity", "value",
	)
	tb.AddRow("applications orphaned and restarted", fmt.Sprintf("%d", restarts))
	tb.AddRow("restart completed within (windows)", fmt.Sprintf("%d", lastRestart-failAt+1))
	tb.AddRow("demand stranded while orphaned (watt-ticks)", fmt.Sprintf("%.0f", r.Stats.OrphanWattTicks))
	tb.AddRow("total dropped (watt-ticks)", fmt.Sprintf("%.0f", r.DroppedWattTicks))
	tb.AddRow("failures / repairs", fmt.Sprintf("%d / %d", r.Stats.Failures, r.Stats.Repairs))
	tb.AddRow("ping-pongs", fmt.Sprintf("%d", r.Stats.PingPongs))
	return &Result{
		Table: tb,
		Notes: []string{
			fmt.Sprintf("all %d orphaned applications restarted within %d control windows of the crash; the repaired server rejoined at the next allocation",
				restarts, lastRestart-failAt+1),
		},
	}, nil
}
