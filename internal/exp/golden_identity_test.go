package exp

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"willow/internal/telemetry"
)

// updateGolden regenerates testdata/golden_experiments.json. The file
// must only ever be produced by a build whose output is known-good (it
// was captured on the pre-SoA hot path before the fleet-scale refactor
// landed); afterwards the test pins every refactor to those bytes.
var updateGolden = flag.Bool("update-golden", false, "rewrite golden experiment hashes")

const goldenExperimentsPath = "testdata/golden_experiments.json"

// goldenEntry is the digest of one experiment run: the SHA-256 of the
// rendered table+notes and of the JSONL telemetry stream.
type goldenEntry struct {
	Table  string `json:"table"`
	Events string `json:"events"`
}

func sha(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// captureExperiment runs one experiment in quick mode with the fixed
// default seed and digests its observable output.
func captureExperiment(t *testing.T, id string) goldenEntry {
	t.Helper()
	var stream bytes.Buffer
	w := telemetry.NewWriter(&stream)
	res, err := Run(id, Options{Quick: true, EventSink: w})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("%s: flush: %v", id, err)
	}
	return goldenEntry{Table: sha([]byte(render(res))), Events: sha(stream.Bytes())}
}

// TestGoldenExperimentIdentity pins every seed experiment (fig4 …
// table3) to byte-identical rendered tables and JSONL event streams
// captured before the fleet-scale hot-path refactor. Timing
// experiments are excluded from the table digest (their cells embed
// wall clock) but their event streams must still match.
func TestGoldenExperimentIdentity(t *testing.T) {
	golden := map[string]goldenEntry{}
	if !*updateGolden {
		raw, err := os.ReadFile(goldenExperimentsPath)
		if err != nil {
			t.Fatalf("missing golden file (run with -update-golden on a known-good build): %v", err)
		}
		if err := json.Unmarshal(raw, &golden); err != nil {
			t.Fatal(err)
		}
	}

	got := map[string]goldenEntry{}
	for _, id := range IDs() {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		entry := captureExperiment(t, id)
		if e.Timing {
			entry.Table = "timing"
		}
		got[id] = entry
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenExperimentsPath), 0o755); err != nil {
			t.Fatal(err)
		}
		ids := make([]string, 0, len(got))
		for id := range got {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		var buf bytes.Buffer
		buf.WriteString("{\n")
		for i, id := range ids {
			e := got[id]
			raw, _ := json.Marshal(e)
			buf.WriteString("  ")
			key, _ := json.Marshal(id)
			buf.Write(key)
			buf.WriteString(": ")
			buf.Write(raw)
			if i < len(ids)-1 {
				buf.WriteByte(',')
			}
			buf.WriteByte('\n')
		}
		buf.WriteString("}\n")
		if err := os.WriteFile(goldenExperimentsPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(got), goldenExperimentsPath)
		return
	}

	if len(got) != len(golden) {
		t.Errorf("experiment count changed: golden has %d, registry has %d", len(golden), len(got))
	}
	for id, want := range golden {
		g, ok := got[id]
		if !ok {
			t.Errorf("%s: experiment disappeared from the registry", id)
			continue
		}
		if g.Events != want.Events {
			t.Errorf("%s: event stream diverged from pre-refactor golden (got %s, want %s)", id, g.Events, want.Events)
		}
		if g.Table != want.Table {
			t.Errorf("%s: rendered table diverged from pre-refactor golden (got %s, want %s)", id, g.Table, want.Table)
		}
	}
}
