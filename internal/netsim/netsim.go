// Package netsim models the data center network of the paper's Fig. 8:
// a switch hierarchy mirroring the power-control hierarchy, where every
// internal PMU node carries the switch connecting its children.
//
// The paper's switch power model (Section V-B5) is static + dynamic with
// the dynamic part directly proportional to traffic handled. Two traffic
// sources exist:
//
//   - base traffic: proportional to the utilization of the servers whose
//     flows the switch carries (user queries in, responses out), with a
//     configurable fraction continuing north to higher levels;
//   - migration traffic: every VM migration transfers its footprint
//     across every switch on the tree path between source and target —
//     the direct network impact of Willow's adaptation (Figs. 10, 12).
//
// Redundant paths ("in the presence of redundant paths with two switches,
// the load is balanced evenly") are modeled by dividing the per-switch
// load by the redundancy factor.
package netsim

import (
	"fmt"

	"willow/internal/power"
	"willow/internal/topo"
)

// Config parameterizes the network model.
type Config struct {
	// Switch is the power curve applied to every switch.
	Switch power.SwitchModel
	// TrafficPerUtil is the traffic units one server generates per unit
	// of utilization per tick.
	TrafficPerUtil float64
	// NorthFraction is the share of a subtree's base traffic that also
	// traverses the next switch level up (north–south traffic).
	NorthFraction float64
	// BytesPerMigrationUnit converts an application's migration footprint
	// (workload.App.MigrationBytes) into traffic units.
	BytesPerMigrationUnit float64
	// Redundancy divides per-switch load: 2 models the paper's paired
	// switches with even balancing. Must be >= 1.
	Redundancy int
}

// DefaultConfig returns the parameters used by the paper-shaped
// experiments: a nearly-all-dynamic switch power curve (the paper calls
// the static part "very small"), paired redundant switches, and half the
// base traffic continuing north per level.
func DefaultConfig() Config {
	return Config{
		Switch:                power.SwitchModel{Static: 10, PerTraffic: 0.5, MaxTraffic: 400},
		TrafficPerUtil:        100,
		NorthFraction:         0.5,
		BytesPerMigrationUnit: 8,
		Redundancy:            2,
	}
}

// Network accumulates per-switch traffic and energy over a run.
type Network struct {
	cfg  Config
	tree *topo.Tree

	// Per-tick accumulators, reset by EndTick.
	tickBase map[int]float64
	tickMig  map[int]float64

	// Run totals.
	ticks       int
	totalMig    map[int]float64 // migration traffic per switch
	totalBase   map[int]float64
	energy      map[int]float64 // watt-ticks per switch
	migTraffic  float64         // total migration traffic, all switches
	baseTraffic float64
	flowHops    int // switch hops accumulated over all flow observations
	flowSamples int // flow observations (one per flow per tick)
}

// New builds a Network over the tree.
func New(tree *topo.Tree, cfg Config) (*Network, error) {
	if err := cfg.Switch.Validate(); err != nil {
		return nil, err
	}
	if cfg.Redundancy < 1 {
		return nil, fmt.Errorf("netsim: redundancy %d must be >= 1", cfg.Redundancy)
	}
	if cfg.NorthFraction < 0 || cfg.NorthFraction > 1 {
		return nil, fmt.Errorf("netsim: north fraction %v outside [0, 1]", cfg.NorthFraction)
	}
	return &Network{
		cfg:       cfg,
		tree:      tree,
		tickBase:  map[int]float64{},
		tickMig:   map[int]float64{},
		totalMig:  map[int]float64{},
		totalBase: map[int]float64{},
		energy:    map[int]float64{},
	}, nil
}

// RecordServerTraffic adds one server's base traffic for the current
// tick: utilization-proportional load on its level-1 switch, decaying by
// NorthFraction per level above.
func (n *Network) RecordServerTraffic(serverIndex int, utilization float64) {
	if utilization <= 0 {
		return
	}
	load := utilization * n.cfg.TrafficPerUtil
	for sw := n.tree.Servers[serverIndex].Parent; sw != nil; sw = sw.Parent {
		n.tickBase[sw.ID] += load
		load *= n.cfg.NorthFraction
	}
}

// Flow is persistent application-to-application communication (IPC).
// The paper's evaluation assumes "minimum or no interaction between
// servers" and leaves IPC-heavy workloads to future work (Section VI);
// flows let the network model quantify what migration does to such
// traffic: a co-located pair costs no switch capacity, a separated pair
// loads every switch on the path between its hosts.
type Flow struct {
	// AppA, AppB are the communicating application IDs.
	AppA, AppB int
	// Rate is the traffic in units per tick.
	Rate float64
}

// RecordFlows adds one tick of IPC traffic for the given flows.
// location maps application ID to hosting server index; flows whose
// endpoints are unlocated are skipped. It also accumulates the hop-count
// statistics behind MeanFlowHops.
func (n *Network) RecordFlows(flows []Flow, location map[int]int) {
	for _, f := range flows {
		a, okA := location[f.AppA]
		b, okB := location[f.AppB]
		if !okA || !okB || f.Rate <= 0 {
			continue
		}
		n.flowSamples++
		if a == b {
			continue // co-located: no network traversal
		}
		path := n.tree.SwitchPath(n.tree.Servers[a], n.tree.Servers[b])
		n.flowHops += len(path)
		for _, sw := range path {
			n.tickBase[sw.ID] += f.Rate
		}
	}
}

// MeanFlowHops returns the average switch hops per flow observation
// (0 when all pairs stayed co-located or no flows were recorded).
func (n *Network) MeanFlowHops() float64 {
	if n.flowSamples == 0 {
		return 0
	}
	return float64(n.flowHops) / float64(n.flowSamples)
}

// RecordMigration adds a migration's transfer to every switch on the
// path between the two servers.
func (n *Network) RecordMigration(fromServer, toServer int, migrationBytes float64) {
	if fromServer == toServer {
		return
	}
	units := migrationBytes * n.cfg.BytesPerMigrationUnit
	a := n.tree.Servers[fromServer]
	b := n.tree.Servers[toServer]
	for _, sw := range n.tree.SwitchPath(a, b) {
		n.tickMig[sw.ID] += units
	}
}

// EndTick settles the current tick: converts accumulated traffic into
// switch power (after redundancy balancing), adds it to the energy
// totals, and clears the per-tick state.
func (n *Network) EndTick() {
	n.ticks++
	for _, node := range n.tree.Nodes {
		if node.IsLeaf() {
			continue
		}
		base := n.tickBase[node.ID]
		mig := n.tickMig[node.ID]
		perSwitch := (base + mig) / float64(n.cfg.Redundancy)
		n.energy[node.ID] += n.cfg.Switch.Power(perSwitch)
		n.totalBase[node.ID] += base
		n.totalMig[node.ID] += mig
		n.baseTraffic += base
		n.migTraffic += mig
	}
	n.tickBase = map[int]float64{}
	n.tickMig = map[int]float64{}
}

// Ticks returns the number of settled ticks.
func (n *Network) Ticks() int { return n.ticks }

// MeanSwitchPower returns the average power of the switch at the given
// internal node over the run.
func (n *Network) MeanSwitchPower(nodeID int) float64 {
	if n.ticks == 0 {
		return 0
	}
	return n.energy[nodeID] / float64(n.ticks)
}

// LevelSwitchPower returns the mean power of every switch at the given
// level, in node order — Fig. 11 plots this for level 1.
func (n *Network) LevelSwitchPower(level int) []float64 {
	var out []float64
	for _, node := range n.tree.LevelNodes(level) {
		if !node.IsLeaf() {
			out = append(out, n.MeanSwitchPower(node.ID))
		}
	}
	return out
}

// LevelMigrationTraffic returns the total migration traffic carried by
// each switch at the given level — the per-switch migration cost of
// Fig. 12.
func (n *Network) LevelMigrationTraffic(level int) []float64 {
	var out []float64
	for _, node := range n.tree.LevelNodes(level) {
		if !node.IsLeaf() {
			out = append(out, n.totalMig[node.ID])
		}
	}
	return out
}

// MigrationTrafficShare returns total migration traffic normalized by
// the maximum traffic the network could have carried over the run
// (capacity × switches × ticks) — the normalization of Fig. 10, which
// makes overheads comparable across utilization levels.
func (n *Network) MigrationTrafficShare() float64 {
	if n.ticks == 0 {
		return 0
	}
	switches := 0
	for _, node := range n.tree.Nodes {
		if !node.IsLeaf() {
			switches++
		}
	}
	capacity := n.cfg.Switch.MaxTraffic * float64(switches) * float64(n.ticks) * float64(n.cfg.Redundancy)
	if capacity <= 0 {
		return 0
	}
	return n.migTraffic / capacity
}

// TotalMigrationTraffic returns the run's total migration traffic units.
func (n *Network) TotalMigrationTraffic() float64 { return n.migTraffic }

// TotalBaseTraffic returns the run's total base traffic units.
func (n *Network) TotalBaseTraffic() float64 { return n.baseTraffic }
