package netsim

import (
	"math"
	"testing"

	"willow/internal/power"
	"willow/internal/topo"
)

func testTree(t *testing.T) *topo.Tree {
	t.Helper()
	tr, err := topo.Build([]int{2, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Redundancy = 1 // simpler arithmetic in unit tests
	return cfg
}

func TestNewValidation(t *testing.T) {
	tr := testTree(t)
	bad := testConfig()
	bad.Redundancy = 0
	if _, err := New(tr, bad); err == nil {
		t.Error("redundancy 0 accepted")
	}
	bad = testConfig()
	bad.NorthFraction = 1.5
	if _, err := New(tr, bad); err == nil {
		t.Error("north fraction 1.5 accepted")
	}
	bad = testConfig()
	bad.Switch = power.SwitchModel{MaxTraffic: 0}
	if _, err := New(tr, bad); err == nil {
		t.Error("invalid switch model accepted")
	}
}

func TestServerTrafficClimbsWithNorthFraction(t *testing.T) {
	tr := testTree(t)
	cfg := testConfig()
	cfg.TrafficPerUtil = 100
	cfg.NorthFraction = 0.5
	n, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.RecordServerTraffic(0, 0.4) // 40 units at L1, 20 at L2, 10 at root
	s := tr.Servers[0]
	l1 := s.Parent
	l2 := l1.Parent
	if got := n.tickBase[l1.ID]; math.Abs(got-40) > 1e-9 {
		t.Errorf("L1 base = %v, want 40", got)
	}
	if got := n.tickBase[l2.ID]; math.Abs(got-20) > 1e-9 {
		t.Errorf("L2 base = %v, want 20", got)
	}
	if got := n.tickBase[tr.Root.ID]; math.Abs(got-10) > 1e-9 {
		t.Errorf("root base = %v, want 10", got)
	}
}

func TestZeroUtilizationNoTraffic(t *testing.T) {
	tr := testTree(t)
	n, err := New(tr, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.RecordServerTraffic(0, 0)
	if len(n.tickBase) != 0 {
		t.Error("zero utilization generated traffic")
	}
}

func TestMigrationTrafficOnPath(t *testing.T) {
	tr := testTree(t)
	cfg := testConfig()
	cfg.BytesPerMigrationUnit = 2
	n, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Siblings: one switch.
	n.RecordMigration(0, 1, 5)
	parent := tr.Servers[0].Parent
	if got := n.tickMig[parent.ID]; math.Abs(got-10) > 1e-9 {
		t.Errorf("sibling migration traffic = %v, want 10", got)
	}
	// Cross-root: 5 switches each get the transfer.
	n2, _ := New(tr, cfg)
	n2.RecordMigration(0, 17, 5)
	if got := len(n2.tickMig); got != 5 {
		t.Errorf("cross-root migration touched %d switches, want 5", got)
	}
	for id, v := range n2.tickMig {
		if math.Abs(v-10) > 1e-9 {
			t.Errorf("switch %d carries %v, want 10", id, v)
		}
	}
}

func TestMigrationToSelfIgnored(t *testing.T) {
	tr := testTree(t)
	n, _ := New(tr, testConfig())
	n.RecordMigration(3, 3, 5)
	if len(n.tickMig) != 0 {
		t.Error("self-migration generated traffic")
	}
}

func TestEndTickAccumulatesEnergy(t *testing.T) {
	tr := testTree(t)
	cfg := testConfig()
	cfg.Switch = power.SwitchModel{Static: 10, PerTraffic: 1, MaxTraffic: 1000}
	cfg.TrafficPerUtil = 100
	cfg.NorthFraction = 0
	n, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.RecordServerTraffic(0, 0.5) // 50 units on server 0's L1 switch
	n.EndTick()
	l1 := tr.Servers[0].Parent
	if got := n.MeanSwitchPower(l1.ID); math.Abs(got-60) > 1e-9 {
		t.Errorf("loaded switch mean power = %v, want 60", got)
	}
	// Idle switches still burn static power.
	other := tr.Servers[17].Parent
	if got := n.MeanSwitchPower(other.ID); math.Abs(got-10) > 1e-9 {
		t.Errorf("idle switch mean power = %v, want 10 (static)", got)
	}
	if n.Ticks() != 1 {
		t.Errorf("ticks = %d", n.Ticks())
	}
	// Per-tick state cleared.
	if len(n.tickBase) != 0 || len(n.tickMig) != 0 {
		t.Error("tick accumulators not cleared")
	}
}

func TestRedundancyHalvesLoad(t *testing.T) {
	tr := testTree(t)
	base := testConfig()
	base.Switch = power.SwitchModel{Static: 0, PerTraffic: 1, MaxTraffic: 1000}
	base.NorthFraction = 0

	single, _ := New(tr, base)
	dual := base
	dual.Redundancy = 2
	paired, _ := New(tr, dual)

	single.RecordServerTraffic(0, 1)
	paired.RecordServerTraffic(0, 1)
	single.EndTick()
	paired.EndTick()

	l1 := tr.Servers[0].Parent.ID
	if got, want := paired.MeanSwitchPower(l1), single.MeanSwitchPower(l1)/2; math.Abs(got-want) > 1e-9 {
		t.Errorf("redundant switch power = %v, want half of %v", got, single.MeanSwitchPower(l1))
	}
}

func TestLevelSwitchPower(t *testing.T) {
	tr := testTree(t)
	n, _ := New(tr, testConfig())
	for i := 0; i < tr.NumServers(); i++ {
		n.RecordServerTraffic(i, 0.5)
	}
	n.EndTick()
	l1 := n.LevelSwitchPower(1)
	if len(l1) != 6 {
		t.Fatalf("level-1 has %d switches, want 6", len(l1))
	}
	// Uniform load -> uniform switch power (the Fig. 11 observation).
	for _, p := range l1 {
		if math.Abs(p-l1[0]) > 1e-9 {
			t.Errorf("level-1 switch powers uneven: %v", l1)
		}
	}
}

func TestLevelMigrationTraffic(t *testing.T) {
	tr := testTree(t)
	cfg := testConfig()
	cfg.BytesPerMigrationUnit = 1
	n, _ := New(tr, cfg)
	n.RecordMigration(0, 1, 7)
	n.EndTick()
	l1 := n.LevelMigrationTraffic(1)
	if len(l1) != 6 {
		t.Fatalf("level-1 has %d entries", len(l1))
	}
	if math.Abs(l1[0]-7) > 1e-9 {
		t.Errorf("first L1 switch migration traffic = %v, want 7", l1[0])
	}
	for _, v := range l1[1:] {
		if v != 0 {
			t.Errorf("unrelated switch carries migration traffic %v", v)
		}
	}
}

func TestMigrationTrafficShare(t *testing.T) {
	tr := testTree(t)
	cfg := testConfig()
	cfg.Switch.MaxTraffic = 100
	cfg.BytesPerMigrationUnit = 1
	n, _ := New(tr, cfg)
	if got := n.MigrationTrafficShare(); got != 0 {
		t.Errorf("share before any tick = %v", got)
	}
	n.RecordMigration(0, 1, 50)
	n.EndTick()
	// 9 switches * 100 capacity * 1 tick = 900; 50 units moved.
	want := 50.0 / 900.0
	if got := n.MigrationTrafficShare(); math.Abs(got-want) > 1e-12 {
		t.Errorf("share = %v, want %v", got, want)
	}
	if got := n.TotalMigrationTraffic(); got != 50 {
		t.Errorf("total migration traffic = %v", got)
	}
	if got := n.TotalBaseTraffic(); got != 0 {
		t.Errorf("total base traffic = %v", got)
	}
}

func BenchmarkEndTick(b *testing.B) {
	tr, err := topo.Build([]int{4, 4, 4})
	if err != nil {
		b.Fatal(err)
	}
	n, err := New(tr, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for s := 0; s < tr.NumServers(); s++ {
			n.RecordServerTraffic(s, 0.5)
		}
		n.RecordMigration(i%tr.NumServers(), (i*13+7)%tr.NumServers(), 5)
		n.EndTick()
	}
}

func TestRecordFlowsColocatedIsFree(t *testing.T) {
	tr := testTree(t)
	n, _ := New(tr, testConfig())
	loc := map[int]int{1: 3, 2: 3}
	n.RecordFlows([]Flow{{AppA: 1, AppB: 2, Rate: 10}}, loc)
	if len(n.tickBase) != 0 {
		t.Error("co-located flow generated switch traffic")
	}
	if got := n.MeanFlowHops(); got != 0 {
		t.Errorf("MeanFlowHops = %v, want 0", got)
	}
}

func TestRecordFlowsSeparatedLoadsPath(t *testing.T) {
	tr := testTree(t)
	n, _ := New(tr, testConfig())
	loc := map[int]int{1: 0, 2: 17}
	n.RecordFlows([]Flow{{AppA: 1, AppB: 2, Rate: 10}}, loc)
	if got := len(n.tickBase); got != 5 {
		t.Fatalf("flow loaded %d switches, want 5 (cross-root path)", got)
	}
	for _, v := range n.tickBase {
		if v != 10 {
			t.Errorf("switch carries %v, want 10", v)
		}
	}
	if got := n.MeanFlowHops(); got != 5 {
		t.Errorf("MeanFlowHops = %v, want 5", got)
	}
}

func TestRecordFlowsSkipsUnlocatedAndZeroRate(t *testing.T) {
	tr := testTree(t)
	n, _ := New(tr, testConfig())
	n.RecordFlows([]Flow{
		{AppA: 1, AppB: 2, Rate: 10}, // app 2 unlocated
		{AppA: 1, AppB: 3, Rate: 0},  // zero rate
	}, map[int]int{1: 0, 3: 5})
	if len(n.tickBase) != 0 {
		t.Error("invalid flows generated traffic")
	}
}

func TestMeanFlowHopsMixes(t *testing.T) {
	tr := testTree(t)
	n, _ := New(tr, testConfig())
	loc := map[int]int{1: 0, 2: 1, 3: 4, 4: 4}
	n.RecordFlows([]Flow{
		{AppA: 1, AppB: 2, Rate: 1}, // siblings: 1 hop
		{AppA: 3, AppB: 4, Rate: 1}, // co-located: 0 hops
	}, loc)
	if got := n.MeanFlowHops(); got != 0.5 {
		t.Errorf("MeanFlowHops = %v, want 0.5", got)
	}
}
