// Package cooling models the data center's cooling infrastructure — the
// energy cost the paper's future work says a holistic Willow must fold
// into its adaptation ("In order to do a holistic power control, Willow
// must consider the energy consumed by cooling infrastructure as well",
// Section VI).
//
// Every watt a server draws becomes heat the facility must remove. The
// efficiency of removal is the coefficient of performance (COP): watts
// of heat removed per watt of cooling power, which improves with the
// supply (cold-aisle) temperature. We use the chilled-water COP curve of
// Moore et al. (USENIX ATC 2005) — the temperature-aware-placement paper
// Willow cites as [10]:
//
//	COP(T) = 0.0068·T² + 0.0008·T + 0.458
//
// Zones let a facility mix cooling regimes: a tightly chilled 25 °C
// aisle (expensive per watt) and a 40 °C ambient/economizer aisle (cheap
// per watt but thermally tight for the servers — exactly the trade-off
// Willow navigates in Figs. 5–7).
package cooling

import "fmt"

// COPModel maps a zone's supply temperature (°C) to its coefficient of
// performance.
type COPModel func(supplyTempC float64) float64

// MooreCOP is the HP Utility Data Center chilled-water curve used by
// Moore et al. (2005): COP(T) = 0.0068·T² + 0.0008·T + 0.458.
func MooreCOP(t float64) float64 {
	return 0.0068*t*t + 0.0008*t + 0.458
}

// Zone is one cooling domain.
type Zone struct {
	Name string
	// SupplyTemp is the cold-aisle supply temperature, °C.
	SupplyTemp float64
	// Servers lists the server indices cooled by this zone.
	Servers []int
}

// Plant is a facility's cooling system.
type Plant struct {
	Zones []Zone
	COP   COPModel
	// FanOverhead is the air-moving power as a fraction of IT power
	// (burned regardless of chiller efficiency).
	FanOverhead float64
	// FixedPower is the plant's load-independent draw (pumps, controls).
	FixedPower float64
}

// NewPlant returns a plant over the given zones using the Moore COP
// curve, 3 % fan overhead and no fixed draw.
func NewPlant(zones []Zone) (*Plant, error) {
	seen := map[int]bool{}
	for _, z := range zones {
		if len(z.Servers) == 0 {
			return nil, fmt.Errorf("cooling: zone %q cools no servers", z.Name)
		}
		for _, s := range z.Servers {
			if seen[s] {
				return nil, fmt.Errorf("cooling: server %d assigned to two zones", s)
			}
			seen[s] = true
		}
	}
	return &Plant{Zones: zones, COP: MooreCOP, FanOverhead: 0.03}, nil
}

// PaperZones returns the two-zone split of the paper's simulation: the
// 25 °C chilled aisle for servers 1–14 and the 40 °C economizer aisle
// for servers 15–18.
func PaperZones() []Zone {
	cool := Zone{Name: "chilled-25C", SupplyTemp: 25}
	hot := Zone{Name: "economizer-40C", SupplyTemp: 40}
	for i := 0; i < 14; i++ {
		cool.Servers = append(cool.Servers, i)
	}
	for i := 14; i < 18; i++ {
		hot.Servers = append(hot.Servers, i)
	}
	return []Zone{cool, hot}
}

// CoolingPower returns the plant power needed to remove the heat of the
// given per-server IT draw (indexed by server).
func (p *Plant) CoolingPower(perServerWatts []float64) float64 {
	total := p.FixedPower
	var itTotal float64
	for _, z := range p.Zones {
		var heat float64
		for _, s := range z.Servers {
			if s >= 0 && s < len(perServerWatts) {
				heat += perServerWatts[s]
			}
		}
		itTotal += heat
		if cop := p.COP(z.SupplyTemp); cop > 0 {
			total += heat / cop
		}
	}
	return total + itTotal*p.FanOverhead
}

// PUE returns the power usage effectiveness for the given per-server IT
// draw: (IT + cooling) / IT. It returns 1 for zero IT power.
func (p *Plant) PUE(perServerWatts []float64) float64 {
	var it float64
	for _, w := range perServerWatts {
		it += w
	}
	if it <= 0 {
		return 1
	}
	return (it + p.CoolingPower(perServerWatts)) / it
}

// ZoneHeat returns the IT heat per zone, in zone order.
func (p *Plant) ZoneHeat(perServerWatts []float64) []float64 {
	out := make([]float64, len(p.Zones))
	for zi, z := range p.Zones {
		for _, s := range z.Servers {
			if s >= 0 && s < len(perServerWatts) {
				out[zi] += perServerWatts[s]
			}
		}
	}
	return out
}
