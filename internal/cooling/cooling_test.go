package cooling

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMooreCOPCurve(t *testing.T) {
	// Anchor values from the published curve.
	if got := MooreCOP(15); math.Abs(got-(0.0068*225+0.0008*15+0.458)) > 1e-12 {
		t.Errorf("COP(15) = %v", got)
	}
	// COP improves with supply temperature.
	if MooreCOP(40) <= MooreCOP(25) {
		t.Error("COP not increasing in temperature")
	}
	if MooreCOP(25) <= 0 {
		t.Error("COP not positive")
	}
}

func TestNewPlantValidation(t *testing.T) {
	if _, err := NewPlant([]Zone{{Name: "empty", SupplyTemp: 25}}); err == nil {
		t.Error("zone with no servers accepted")
	}
	if _, err := NewPlant([]Zone{
		{Name: "a", SupplyTemp: 25, Servers: []int{0, 1}},
		{Name: "b", SupplyTemp: 40, Servers: []int{1}},
	}); err == nil {
		t.Error("overlapping zones accepted")
	}
}

func TestPaperZones(t *testing.T) {
	zones := PaperZones()
	if len(zones) != 2 {
		t.Fatalf("%d zones", len(zones))
	}
	if len(zones[0].Servers) != 14 || len(zones[1].Servers) != 4 {
		t.Errorf("zone sizes %d/%d, want 14/4", len(zones[0].Servers), len(zones[1].Servers))
	}
	if zones[0].SupplyTemp != 25 || zones[1].SupplyTemp != 40 {
		t.Error("zone temperatures wrong")
	}
	if _, err := NewPlant(zones); err != nil {
		t.Errorf("paper zones invalid: %v", err)
	}
}

func TestCoolingPowerArithmetic(t *testing.T) {
	plant, err := NewPlant([]Zone{
		{Name: "a", SupplyTemp: 25, Servers: []int{0}},
		{Name: "b", SupplyTemp: 40, Servers: []int{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	plant.FanOverhead = 0
	plant.FixedPower = 10
	heat := []float64{100, 200}
	want := 10 + 100/MooreCOP(25) + 200/MooreCOP(40)
	if got := plant.CoolingPower(heat); math.Abs(got-want) > 1e-9 {
		t.Errorf("CoolingPower = %v, want %v", got, want)
	}
}

func TestWarmZoneIsCheaperToCool(t *testing.T) {
	plant, err := NewPlant(PaperZones())
	if err != nil {
		t.Fatal(err)
	}
	// The same 100 W of heat: in the cool zone vs the hot zone.
	inCool := make([]float64, 18)
	inCool[0] = 100
	inHot := make([]float64, 18)
	inHot[17] = 100
	if plant.CoolingPower(inCool) <= plant.CoolingPower(inHot) {
		t.Error("heat in the 25 °C zone should cost more cooling power than in the 40 °C zone")
	}
}

func TestPUE(t *testing.T) {
	plant, err := NewPlant(PaperZones())
	if err != nil {
		t.Fatal(err)
	}
	heat := make([]float64, 18)
	for i := range heat {
		heat[i] = 300
	}
	pue := plant.PUE(heat)
	if pue <= 1 || pue > 2 {
		t.Errorf("PUE = %v, want a plausible (1, 2]", pue)
	}
	if got := plant.PUE(make([]float64, 18)); got != 1 {
		t.Errorf("zero-IT PUE = %v, want 1", got)
	}
}

func TestZoneHeat(t *testing.T) {
	plant, err := NewPlant(PaperZones())
	if err != nil {
		t.Fatal(err)
	}
	heat := make([]float64, 18)
	heat[0], heat[17] = 50, 70
	zh := plant.ZoneHeat(heat)
	if zh[0] != 50 || zh[1] != 70 {
		t.Errorf("ZoneHeat = %v, want [50 70]", zh)
	}
}

func TestOutOfRangeServersIgnored(t *testing.T) {
	plant, err := NewPlant([]Zone{{Name: "a", SupplyTemp: 25, Servers: []int{0, 5}}})
	if err != nil {
		t.Fatal(err)
	}
	// Only index 0 exists in the slice; index 5 must be ignored.
	if got := plant.ZoneHeat([]float64{40}); got[0] != 40 {
		t.Errorf("ZoneHeat = %v", got)
	}
}

// Property: cooling power is monotone in heat and non-negative.
func TestCoolingMonotoneQuick(t *testing.T) {
	plant, err := NewPlant(PaperZones())
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw [18]uint8, bump uint8, idx uint8) bool {
		heat := make([]float64, 18)
		for i, r := range raw {
			heat[i] = float64(r)
		}
		base := plant.CoolingPower(heat)
		if base < 0 {
			return false
		}
		heat[int(idx)%18] += float64(bump)
		return plant.CoolingPower(heat) >= base-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkCoolingPower(b *testing.B) {
	plant, err := NewPlant(PaperZones())
	if err != nil {
		b.Fatal(err)
	}
	heat := make([]float64, 18)
	for i := range heat {
		heat[i] = float64(150 + i*10)
	}
	for i := 0; i < b.N; i++ {
		plant.CoolingPower(heat)
	}
}
