package trace

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"willow/internal/power"
)

func TestReadBareColumn(t *testing.T) {
	tr, err := Read(strings.NewReader("100\n200\n300\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 3 || tr[1] != 200 {
		t.Errorf("parsed %v", tr)
	}
}

func TestReadTwoColumnsWithHeader(t *testing.T) {
	in := "time,watts\n0,630\n1,625\n\n# a comment\n2,620\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := power.Trace{630, 625, 620}
	if len(tr) != 3 {
		t.Fatalf("parsed %v", tr)
	}
	for i := range want {
		if tr[i] != want[i] {
			t.Errorf("sample %d = %v, want %v", i, tr[i], want[i])
		}
	}
}

func TestReadHeaderAfterCommentsAndBlanks(t *testing.T) {
	// The header need not be the file's first line: exporters often
	// prepend a comment banner or a blank line, and the header is still
	// skipped (regression: the skip used to require line == 1).
	in := "# solar inverter export\n\n# site 7\ntime,watts\n0,630\n1,625\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := power.Trace{630, 625}
	if len(tr) != 2 || tr[0] != want[0] || tr[1] != want[1] {
		t.Errorf("parsed %v, want %v", tr, want)
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := []string{
		"",                 // empty
		"# only comments",  // no samples
		"1,2,3\n",          // too many columns
		"100\n-5\n",        // negative supply
		"100\nnotanumber",  // bad number mid-file
		"header\nmore-bad", // two non-numeric rows
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	orig := power.DeficitTrace()
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip length %d, want %d", len(got), len(orig))
	}
	for i := range orig {
		if math.Abs(got[i]-orig[i]) > 1e-9 {
			t.Errorf("sample %d: %v != %v", i, got[i], orig[i])
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "supply.csv")
	if err := WriteFile(path, power.PlentyTrace()); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Mean()-power.PlentyTrace().Mean()) > 1e-9 {
		t.Error("file round trip changed the trace")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile("/nonexistent/supply.csv"); err == nil {
		t.Error("missing file accepted")
	}
}
