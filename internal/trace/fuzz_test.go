package trace

import (
	"strings"
	"testing"
)

// FuzzRead throws arbitrary text at the trace parser: it must either
// return an error or a trace of non-negative samples — never panic.
func FuzzRead(f *testing.F) {
	f.Add("100\n200\n")
	f.Add("time,watts\n0,630\n")
	f.Add("# comment\n\n5")
	f.Add("a,b,c")
	f.Add("-1")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(tr) == 0 {
			t.Fatal("nil error with empty trace")
		}
		for i, v := range tr {
			if v < 0 {
				t.Fatalf("sample %d negative: %v", i, v)
			}
		}
	})
}
