package trace

import (
	"strings"
	"testing"
)

// FuzzRead throws arbitrary text at the trace parser: it must either
// return an error or a trace of non-negative samples — never panic.
func FuzzRead(f *testing.F) {
	f.Add("100\n200\n")
	f.Add("time,watts\n0,630\n")
	f.Add("# comment\n\n5")
	f.Add("a,b,c")
	f.Add("-1")
	// Single-tick traces and degenerate layouts from the parallel-harness
	// audit: one bare sample, one sample with trailing newline, a
	// header-only CSV, a zero sample, and comment/blank-only input.
	f.Add("630")
	f.Add("0\n")
	f.Add("time,watts\n")
	f.Add("# only a comment\n")
	f.Add("\n\n\n")
	f.Add("1e300\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(tr) == 0 {
			t.Fatal("nil error with empty trace")
		}
		for i, v := range tr {
			if v < 0 {
				t.Fatalf("sample %d negative: %v", i, v)
			}
		}
	})
}
