// Package trace reads and writes power-supply traces as CSV, so the
// simulator can be driven by recorded feeds (a solar inverter log, a
// utility meter export) instead of the built-in synthetic profiles —
// the data path for the variable-energy scenarios that motivate Energy
// Adaptive Computing.
//
// The accepted format is deliberately forgiving: one sample per line,
// either a bare wattage or `time,watts` columns; blank lines, `#`
// comments and a non-numeric header row are skipped.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"willow/internal/power"
)

// Read parses a supply trace from r.
func Read(r io.Reader) (power.Trace, error) {
	var out power.Trace
	sc := bufio.NewScanner(r)
	line := 0
	first := true // first non-comment, non-blank row may be a header
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		isFirst := first
		first = false
		fields := strings.Split(text, ",")
		var raw string
		switch len(fields) {
		case 1:
			raw = strings.TrimSpace(fields[0])
		case 2:
			raw = strings.TrimSpace(fields[1])
		default:
			return nil, fmt.Errorf("trace: line %d: want 1 or 2 columns, got %d", line, len(fields))
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			if isFirst {
				continue // header row
			}
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("trace: line %d: negative supply %v", line, v)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("trace: no samples")
	}
	return out, nil
}

// ReadFile parses a supply trace from a file.
func ReadFile(path string) (power.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Write emits the trace as `time,watts` CSV with a header.
func Write(w io.Writer, tr power.Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "time,watts"); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	for i, v := range tr {
		if _, err := fmt.Fprintf(bw, "%d,%g\n", i, v); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// WriteFile emits the trace to a file.
func WriteFile(path string, tr power.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := Write(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
