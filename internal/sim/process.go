package sim

import "fmt"

// Process-oriented simulation. Beyond raw events, the kernel supports
// SimPy-style processes: bodies of sequential code that sleep in
// *simulated* time and queue on resources. Each process runs in its own
// goroutine, but execution is strictly deterministic: exactly one of
// {engine, some process} runs at any instant, exchanged through
// synchronous handshakes, so the Go scheduler never influences event
// order.
//
// The handshake protocol: whenever a process is running, the engine (or
// the event that woke the process) blocks on the process's park channel.
// The process hands control back by parking — sleeping, waiting on a
// resource, or finishing — and is handed control by a resume signal from
// a scheduled event.

// Proc is a simulated process. Its methods may only be called from
// within the process's own body.
type Proc struct {
	e      *Engine
	name   string
	park   chan struct{} // process -> engine: "I'm parked, carry on"
	resume chan struct{} // engine -> process: "your wake event fired"
	done   bool
}

// Name returns the process's label.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated tick.
func (p *Proc) Now() Tick { return p.e.Now() }

// Engine returns the engine the process runs on (to schedule raw events
// or start further processes).
func (p *Proc) Engine() *Engine { return p.e }

// Go starts a process whose body begins executing at the current tick
// (after already-queued same-tick events). The body runs until it
// returns; a body that blocks forever on a resource simply never
// completes, like any other starved process — note that its goroutine
// then outlives the run (parked on a channel), so simulations should be
// constructed to quiesce: every Acquire eventually satisfiable, every
// process eventually returning.
func (e *Engine) Go(name string, body func(*Proc)) *Proc {
	if body == nil {
		panic("sim: Go with nil body")
	}
	p := &Proc{
		e:      e,
		name:   name,
		park:   make(chan struct{}),
		resume: make(chan struct{}),
	}
	e.ScheduleNamed(e.now, fmt.Sprintf("start %s", name), func(Tick) {
		go func() {
			body(p)
			p.done = true
			p.park <- struct{}{}
		}()
		<-p.park // run the body until it first parks or finishes
	})
	return p
}

// parkAndWait hands control to the engine and blocks until a wake event
// resumes this process.
func (p *Proc) parkAndWait() {
	p.park <- struct{}{}
	<-p.resume
}

// wake is the body of a wake event: it resumes the process and waits for
// it to park again (or finish) before letting the engine continue.
func (p *Proc) wake(Tick) {
	p.resume <- struct{}{}
	<-p.park
}

// Sleep suspends the process for d simulated ticks.
func (p *Proc) Sleep(d Tick) {
	if d < 0 {
		panic("sim: Sleep with negative duration")
	}
	p.e.ScheduleNamed(p.e.now+d, fmt.Sprintf("wake %s", p.name), p.wake)
	p.parkAndWait()
}

// Done reports whether the process body has returned. Callable from the
// engine context (events), not from the process itself.
func (p *Proc) Done() bool { return p.done }

// Resource is a counted resource (servers, channels, tokens) with a FIFO
// wait queue: the discipline of a single-queue service center.
type Resource struct {
	e        *Engine
	capacity int
	inUse    int
	waiters  []resourceWaiter
}

type resourceWaiter struct {
	p *Proc
	n int
}

// NewResource returns a resource with the given capacity.
func NewResource(e *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{e: e, capacity: capacity}
}

// Capacity returns the total units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns how many processes are waiting.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquire blocks the calling process until n units are available. FIFO:
// a large request at the head blocks smaller ones behind it (no
// overtaking), as in a strict queue.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: Acquire(%d) on capacity-%d resource", n, r.capacity))
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return
	}
	r.waiters = append(r.waiters, resourceWaiter{p: p, n: n})
	p.parkAndWait()
	// By the time we are resumed, grantHead has already accounted the
	// units to us.
}

// Release returns n units and hands them to queued waiters in FIFO
// order. Callable from process bodies or plain events.
func (r *Resource) Release(n int) {
	if n <= 0 || n > r.inUse {
		panic(fmt.Sprintf("sim: Release(%d) with %d in use", n, r.inUse))
	}
	r.inUse -= n
	r.grantHead()
}

// grantHead admits queue-head waiters that now fit, waking each via a
// same-tick event so execution order stays deterministic.
func (r *Resource) grantHead() {
	for len(r.waiters) > 0 {
		head := r.waiters[0]
		if r.inUse+head.n > r.capacity {
			return
		}
		r.inUse += head.n
		r.waiters = r.waiters[1:]
		r.e.ScheduleNamed(r.e.now, fmt.Sprintf("grant %s", head.p.name), head.p.wake)
	}
}
