package sim

import (
	"testing"
)

func TestProcRunsAndSleeps(t *testing.T) {
	e := New()
	var trace []Tick
	e.Go("worker", func(p *Proc) {
		trace = append(trace, p.Now())
		p.Sleep(5)
		trace = append(trace, p.Now())
		p.Sleep(3)
		trace = append(trace, p.Now())
	})
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	want := []Tick{0, 5, 8}
	if len(trace) != len(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestProcInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		e := New()
		var order []string
		for _, spec := range []struct {
			name  string
			sleep Tick
		}{{"a", 2}, {"b", 1}, {"c", 2}} {
			spec := spec
			e.Go(spec.name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(spec.sleep)
					order = append(order, spec.name)
				}
			})
		}
		if err := e.Run(100); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	for trial := 0; trial < 20; trial++ {
		if got := run(); len(got) != len(first) {
			t.Fatal("lengths diverged")
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("trial %d: order diverged at %d: %v vs %v", trial, i, got, first)
				}
			}
		}
	}
	// b sleeps 1 so it fires first.
	if first[0] != "b" {
		t.Errorf("first wake was %q, want b", first[0])
	}
}

func TestProcDone(t *testing.T) {
	e := New()
	p := e.Go("quick", func(p *Proc) { p.Sleep(1) })
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Error("process not done after run")
	}
	if p.Name() != "quick" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestGoNilBodyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil body accepted")
		}
	}()
	New().Go("x", nil)
}

func TestSleepNegativePanics(t *testing.T) {
	e := New()
	panicked := false
	e.Go("bad", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		p.Sleep(-1)
	})
	_ = e.Run(5)
	if !panicked {
		t.Error("negative sleep did not panic")
	}
}

func TestResourceImmediateGrant(t *testing.T) {
	e := New()
	r := NewResource(e, 2)
	var acquired Tick = -1
	e.Go("p", func(p *Proc) {
		r.Acquire(p, 2)
		acquired = p.Now()
		p.Sleep(3)
		r.Release(2)
	})
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if acquired != 0 {
		t.Errorf("acquired at %d, want 0 (no contention)", acquired)
	}
	if r.InUse() != 0 {
		t.Errorf("in use %d after release", r.InUse())
	}
}

func TestResourceFIFOBlocking(t *testing.T) {
	e := New()
	r := NewResource(e, 1)
	var got []string
	serve := func(name string, hold Tick) {
		e.Go(name, func(p *Proc) {
			r.Acquire(p, 1)
			got = append(got, name)
			p.Sleep(hold)
			r.Release(1)
		})
	}
	serve("first", 4)
	serve("second", 2)
	serve("third", 1)
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	want := []string{"first", "second", "third"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("service order %v, want %v", got, want)
		}
	}
	if r.QueueLen() != 0 {
		t.Errorf("queue len %d at end", r.QueueLen())
	}
}

func TestResourceNoOvertaking(t *testing.T) {
	e := New()
	r := NewResource(e, 2)
	var got []string
	e.Go("hog", func(p *Proc) {
		r.Acquire(p, 2)
		p.Sleep(5)
		r.Release(2)
	})
	e.Go("big", func(p *Proc) {
		p.Sleep(1)
		r.Acquire(p, 2) // queues behind nothing but needs full capacity
		got = append(got, "big")
		r.Release(2)
	})
	e.Go("small", func(p *Proc) {
		p.Sleep(2)
		r.Acquire(p, 1) // would fit sooner, but FIFO forbids overtaking
		got = append(got, "small")
		r.Release(1)
	})
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "big" || got[1] != "small" {
		t.Errorf("order %v, want [big small]", got)
	}
}

func TestResourcePanics(t *testing.T) {
	e := New()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero capacity accepted")
			}
		}()
		NewResource(e, 0)
	}()
	r := NewResource(e, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("over-release accepted")
			}
		}()
		r.Release(1)
	}()
}

// TestManyProcesses drives hundreds of interleaved processes through a
// contended resource and checks global conservation.
func TestManyProcesses(t *testing.T) {
	e := New()
	r := NewResource(e, 4)
	finished := 0
	for i := 0; i < 300; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			p.Sleep(Tick(i % 17))
			r.Acquire(p, 1+i%3)
			p.Sleep(Tick(1 + i%5))
			r.Release(1 + i%3)
			finished++
		})
	}
	if err := e.Run(100000); err != nil {
		t.Fatal(err)
	}
	if finished != 300 {
		t.Fatalf("finished %d/300 processes", finished)
	}
	if r.InUse() != 0 || r.QueueLen() != 0 {
		t.Errorf("resource not drained: inUse %d queue %d", r.InUse(), r.QueueLen())
	}
}

func BenchmarkProcessChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := New()
		r := NewResource(e, 4)
		for j := 0; j < 100; j++ {
			j := j
			e.Go("p", func(p *Proc) {
				p.Sleep(Tick(j % 7))
				r.Acquire(p, 1)
				p.Sleep(2)
				r.Release(1)
			})
		}
		if err := e.Run(10000); err != nil {
			b.Fatal(err)
		}
	}
}

func TestProcEngineAndResourceAccessors(t *testing.T) {
	e := New()
	r := NewResource(e, 3)
	if r.Capacity() != 3 {
		t.Errorf("Capacity = %d", r.Capacity())
	}
	e.Go("p", func(p *Proc) {
		if p.Engine() != e {
			t.Error("Engine() returned a different engine")
		}
		// A process can schedule raw events on its engine.
		p.Engine().Schedule(p.Now()+2, func(Tick) {})
		p.Sleep(1)
	})
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
}
