// Package sim is a small deterministic discrete-event simulation kernel.
//
// Willow's evaluation runs on discrete control epochs (the paper's Δ_D,
// Δ_S = η1·Δ_D and Δ_A = η2·Δ_D time granularities, Section IV-C), so the
// kernel is organised around an integer tick clock plus an event calendar:
// events are closures scheduled at a tick, executed in (tick, FIFO) order.
// Determinism is guaranteed by a monotonically increasing sequence number
// that breaks ties between events scheduled for the same tick, so two runs
// with the same inputs execute events in exactly the same order.
//
// The kernel deliberately has no goroutines: a simulation is a single
// logical thread of control, and the reproducibility of a run must not
// depend on the Go scheduler.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Tick is a point in simulated time. The physical duration of one tick is
// whatever the model assigns to it (Willow uses one demand window Δ_D).
type Tick int64

// Event is a unit of simulated work executed at a scheduled tick.
type Event func(now Tick)

// ErrStopped is returned by Run when the simulation was stopped explicitly
// via Engine.Stop before reaching its horizon.
var ErrStopped = errors.New("sim: stopped")

type scheduledEvent struct {
	at   Tick
	seq  uint64 // tie-break: FIFO among same-tick events
	fn   Event
	name string
}

type eventQueue []*scheduledEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*scheduledEvent)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine owns the simulated clock and the event calendar.
// The zero value is ready to use at tick 0.
type Engine struct {
	now     Tick
	queue   eventQueue
	seq     uint64
	stopped bool
	// executed counts events run since construction; useful for tests and
	// for sanity-checking run sizes.
	executed uint64
}

// New returns a fresh Engine at tick 0.
func New() *Engine { return &Engine{} }

// Now returns the current simulated tick.
func (e *Engine) Now() Tick { return e.now }

// Executed reports how many events have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are waiting in the calendar.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues fn to run at tick at. Scheduling in the past (before
// the current tick) is a programming error and panics, since silently
// reordering causality would corrupt any experiment built on the kernel.
func (e *Engine) Schedule(at Tick, fn Event) {
	e.scheduleNamed(at, "", fn)
}

// ScheduleNamed is Schedule with a label that appears in panics originating
// from the event, easing debugging of large models.
func (e *Engine) ScheduleNamed(at Tick, name string, fn Event) {
	e.scheduleNamed(at, name, fn)
}

func (e *Engine) scheduleNamed(at Tick, name string, fn Event) {
	if fn == nil {
		panic("sim: Schedule with nil event")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: event %q scheduled at tick %d, before current tick %d", name, at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &scheduledEvent{at: at, seq: e.seq, fn: fn, name: name})
}

// After enqueues fn to run delay ticks from now. A zero delay runs within
// the current tick, after all events already enqueued for it.
func (e *Engine) After(delay Tick, fn Event) {
	if delay < 0 {
		panic("sim: After with negative delay")
	}
	e.Schedule(e.now+delay, fn)
}

// Every schedules fn at start and then every period ticks thereafter,
// until the engine stops or the horizon passed to Run is reached.
// It panics if period <= 0.
func (e *Engine) Every(start, period Tick, fn Event) {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	var wrapped Event
	wrapped = func(now Tick) {
		fn(now)
		if !e.stopped {
			e.Schedule(now+period, wrapped)
		}
	}
	e.Schedule(start, wrapped)
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single next event, advancing the clock to its tick.
// It reports false when the calendar is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*scheduledEvent)
	e.now = ev.at
	e.executed++
	ev.fn(e.now)
	return true
}

// Run executes events until the calendar is exhausted or an event's tick
// would exceed horizon. Events scheduled exactly at horizon still run.
// On return the clock rests at min(horizon, last executed tick); it returns
// ErrStopped if Stop was called.
func (e *Engine) Run(horizon Tick) error {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > horizon {
			break
		}
		e.Step()
	}
	if e.now < horizon && !e.stopped {
		e.now = horizon
	}
	if e.stopped {
		return ErrStopped
	}
	return nil
}

// RunAll executes events until the calendar is empty or Stop is called.
// Use only with models that are guaranteed to quiesce (no Every loops).
func (e *Engine) RunAll() error {
	e.stopped = false
	for e.Step() {
		if e.stopped {
			return ErrStopped
		}
	}
	return nil
}
