package sim_test

import (
	"fmt"

	"willow/internal/sim"
)

// Example shows the raw event calendar: schedule closures at ticks, run
// to a horizon.
func Example() {
	e := sim.New()
	e.Every(0, 10, func(now sim.Tick) {
		fmt.Printf("heartbeat at %d\n", now)
	})
	e.Schedule(15, func(now sim.Tick) {
		fmt.Printf("one-shot at %d\n", now)
	})
	if err := e.Run(25); err != nil {
		panic(err)
	}

	// Output:
	// heartbeat at 0
	// heartbeat at 10
	// one-shot at 15
	// heartbeat at 20
}

// Example_processes shows the SimPy-style process API: sequential bodies
// that sleep in simulated time and queue FIFO on a shared resource.
func Example_processes() {
	e := sim.New()
	bays := sim.NewResource(e, 1) // one repair bay

	repair := func(name string, arrive, work sim.Tick) {
		e.Go(name, func(p *sim.Proc) {
			p.Sleep(arrive)
			bays.Acquire(p, 1)
			fmt.Printf("%s enters the bay at %d\n", name, p.Now())
			p.Sleep(work)
			bays.Release(1)
		})
	}
	repair("truck", 0, 8)
	repair("car", 3, 2) // arrives while the truck is in the bay

	if err := e.Run(100); err != nil {
		panic(err)
	}

	// Output:
	// truck enters the bay at 0
	// car enters the bay at 8
}
