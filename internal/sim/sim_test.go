package sim

import (
	"errors"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := New()
	if e.Now() != 0 {
		t.Errorf("new engine at tick %d, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Errorf("new engine has %d pending events, want 0", e.Pending())
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New()
	var order []Tick
	for _, at := range []Tick{5, 1, 9, 3, 7} {
		at := at
		e.Schedule(at, func(now Tick) { order = append(order, now) })
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Errorf("events ran out of order: %v", order)
	}
	if len(order) != 5 {
		t.Errorf("ran %d events, want 5", len(order))
	}
}

func TestSameTickEventsRunFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(4, func(Tick) { order = append(order, i) })
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-tick events not FIFO: %v", order)
		}
	}
}

func TestClockAdvancesToEventTick(t *testing.T) {
	e := New()
	e.Schedule(17, func(now Tick) {
		if now != 17 {
			t.Errorf("event saw now=%d, want 17", now)
		}
	})
	e.Step()
	if e.Now() != 17 {
		t.Errorf("clock at %d after event, want 17", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(5, func(Tick) {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.Schedule(2, func(Tick) {})
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil event did not panic")
		}
	}()
	New().Schedule(0, nil)
}

func TestAfter(t *testing.T) {
	e := New()
	e.Schedule(10, func(Tick) {})
	e.Step() // now = 10
	var ran Tick = -1
	e.After(5, func(now Tick) { ran = now })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if ran != 15 {
		t.Errorf("After(5) from tick 10 ran at %d, want 15", ran)
	}
}

func TestAfterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("After(-1) did not panic")
		}
	}()
	New().After(-1, func(Tick) {})
}

func TestEveryFiresPeriodically(t *testing.T) {
	e := New()
	var fired []Tick
	e.Every(0, 3, func(now Tick) { fired = append(fired, now) })
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	want := []Tick{0, 3, 6, 9}
	if len(fired) != len(want) {
		t.Fatalf("Every fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("Every fired at %v, want %v", fired, want)
		}
	}
}

func TestEveryBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every with period 0 did not panic")
		}
	}()
	New().Every(0, 0, func(Tick) {})
}

func TestRunHorizonLeavesLaterEvents(t *testing.T) {
	e := New()
	ran := 0
	e.Schedule(5, func(Tick) { ran++ })
	e.Schedule(20, func(Tick) { ran++ })
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Errorf("ran %d events before horizon 10, want 1", ran)
	}
	if e.Pending() != 1 {
		t.Errorf("%d pending after horizon, want 1", e.Pending())
	}
	if e.Now() != 10 {
		t.Errorf("clock at %d after Run(10), want 10", e.Now())
	}
}

func TestRunEventAtHorizonRuns(t *testing.T) {
	e := New()
	ran := false
	e.Schedule(10, func(Tick) { ran = true })
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("event exactly at horizon did not run")
	}
}

func TestStop(t *testing.T) {
	e := New()
	ran := 0
	e.Schedule(1, func(Tick) { ran++; e.Stop() })
	e.Schedule(2, func(Tick) { ran++ })
	err := e.Run(100)
	if !errors.Is(err, ErrStopped) {
		t.Errorf("Run returned %v, want ErrStopped", err)
	}
	if ran != 1 {
		t.Errorf("ran %d events after Stop, want 1", ran)
	}
}

func TestStopFromEveryLoopTerminates(t *testing.T) {
	e := New()
	count := 0
	e.Every(0, 1, func(Tick) {
		count++
		if count == 5 {
			e.Stop()
		}
	})
	err := e.Run(1000)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Run returned %v, want ErrStopped", err)
	}
	if count != 5 {
		t.Errorf("Every fired %d times, want 5", count)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := New()
	var order []string
	e.Schedule(1, func(Tick) {
		order = append(order, "a")
		e.After(0, func(Tick) { order = append(order, "b") })
	})
	e.Schedule(1, func(Tick) { order = append(order, "c") })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	// "b" was enqueued at tick 1 after "c" was already queued, so FIFO
	// within the tick gives a, c, b.
	want := "acb"
	got := ""
	for _, s := range order {
		got += s
	}
	if got != want {
		t.Errorf("execution order %q, want %q", got, want)
	}
}

func TestExecutedCounter(t *testing.T) {
	e := New()
	for i := Tick(0); i < 7; i++ {
		e.Schedule(i, func(Tick) {})
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if e.Executed() != 7 {
		t.Errorf("Executed() = %d, want 7", e.Executed())
	}
}

// Property: for any multiset of schedule ticks, execution order is the
// sorted order (stable by insertion within equal ticks).
func TestOrderingQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		e := New()
		type rec struct {
			at  Tick
			idx int
		}
		var got []rec
		for i, r := range raw {
			at := Tick(r % 32)
			i := i
			e.Schedule(at, func(now Tick) { got = append(got, rec{now, i}) })
		}
		if err := e.RunAll(); err != nil {
			return false
		}
		if len(got) != len(raw) {
			return false
		}
		for k := 1; k < len(got); k++ {
			if got[k].at < got[k-1].at {
				return false
			}
			if got[k].at == got[k-1].at && got[k].idx < got[k-1].idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			e.Schedule(Tick(j%97), func(Tick) {})
		}
		if err := e.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestScheduleNamedPanicsCarryName(t *testing.T) {
	e := New()
	e.Schedule(5, func(Tick) {})
	e.Step()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("past-scheduling did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boiler") {
			t.Errorf("panic %v does not carry the event name", r)
		}
	}()
	e.ScheduleNamed(1, "boiler", func(Tick) {})
}
