// Command willow-sim runs a free-form Willow data-center simulation: the
// paper's 18-server hierarchy (or a custom fan-out) under a chosen
// utilization and supply profile, printing per-server and control-plane
// summaries.
//
//	willow-sim -util 0.5
//	willow-sim -util 0.7 -supply sine -ticks 600
//	willow-sim -fanout 4,4,4 -util 0.6 -supply deficit -csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"willow/internal/cluster"
	"willow/internal/config"
	"willow/internal/metrics"
	"willow/internal/policy"
	"willow/internal/power"
	"willow/internal/telemetry"
	"willow/internal/trace"
)

func main() {
	var (
		util         = flag.Float64("util", 0.5, "target mean utilization in (0, 1]")
		fanout       = flag.String("fanout", "2,3,3", "PMU hierarchy fan-out, root downward")
		ticks        = flag.Int("ticks", 400, "total demand ticks to simulate")
		warmup       = flag.Int("warmup", 100, "warm-up ticks excluded from averages")
		supply       = flag.String("supply", "constant", "supply profile: constant, sine, deficit-steps, or file:PATH (CSV)")
		seed         = flag.Uint64("seed", 2011, "random seed")
		csv          = flag.Bool("csv", false, "emit per-server results as CSV")
		hotants      = flag.Bool("hotzone", true, "place the last four servers in a 40 °C ambient")
		configPath   = flag.String("config", "", "run from a JSON configuration file instead of flags")
		writeConfig  = flag.String("write-config", "", "write the default configuration to this path and exit")
		events       = flag.String("events", "", "stream controller events as JSONL to this file (plus a .summary.txt report)")
		eventsFilter = flag.String("events-filter", "", "comma-separated event kinds to keep in the stream (budget,migration,throttle,sleep-wake,failure,qos,degraded,sensor; default all)")
		chaosSpec    = flag.String("chaos", "", "inject a seeded fault schedule: preset and/or k=v overrides, e.g. \"medium\" or \"light,pmu-mtbf=400\" (see internal/chaos)")
		chaosSeed    = flag.Uint64("chaos-seed", 0, "seed for chaos schedule expansion (0: derive from -seed)")
		sensorSpec   = flag.String("sensor-chaos", "", "inject seeded sensor faults: preset and/or k=v overrides, e.g. \"heavy\" or \"light,dropout=1\" (see internal/sensor)")
		sensorNaive  = flag.Bool("sensor-naive", false, "disable the robust estimator under -sensor-chaos (trust every reading; unsafe baseline)")
		energyOut    = flag.Bool("energy", false, "print the energy scoreboard and emit per-supply-window energy telemetry events")
		policySpec   = flag.String("policy", "", "controller policy: willow (default), integral, or mpc, plus ,key=val knobs (see internal/policy)")
	)
	flag.Parse()

	if *writeConfig != "" {
		if err := config.Default().Save(*writeConfig); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote default configuration to %s\n", *writeConfig)
		return
	}

	var cfg cluster.Config
	var n int
	if *configPath != "" {
		sim, err := config.Load(*configPath)
		if err != nil {
			fatal(err)
		}
		cfg, err = sim.ToCluster()
		if err != nil {
			fatal(err)
		}
		n = 1
		for _, f := range cfg.Fanout {
			n *= f
		}
	} else {
		cfg = cluster.PaperConfig(*util)
		cfg.Ticks = *ticks
		cfg.Warmup = *warmup
		cfg.Seed = *seed

		fo, err := parseFanout(*fanout)
		if err != nil {
			fatal(err)
		}
		cfg.Fanout = fo
		n = 1
		for _, f := range fo {
			n *= f
		}
		if !*hotants || n != 18 {
			cfg.HotServers = nil
		}

		rated := float64(n) * cfg.ServerPower.Peak
		switch {
		case *supply == "constant":
			cfg.Supply = power.Constant(rated)
		case *supply == "sine":
			cfg.Supply = power.Sine{Base: rated * 0.8, Amplitude: rated * 0.25, Period: 24}
		case *supply == "deficit-steps":
			cfg.Supply = power.Trace{rated, rated, rated * 0.6, rated * 0.6, rated * 0.9, rated, rated * 0.55, rated}
		case strings.HasPrefix(*supply, "file:"):
			tr, err := trace.ReadFile(strings.TrimPrefix(*supply, "file:"))
			if err != nil {
				fatal(err)
			}
			cfg.Supply = tr
		default:
			fatal(fmt.Errorf("unknown supply profile %q (use constant, sine, deficit-steps, or file:PATH)", *supply))
		}
	}

	if *energyOut {
		cfg.Core.EnergyEvents = true
	}

	if *policySpec != "" {
		if _, err := policy.ParseSpec(*policySpec); err != nil {
			fatal(err)
		}
		cfg.Policy = *policySpec
	}

	var planLine string
	if *chaosSpec != "" {
		cseed := *chaosSeed
		if cseed == 0 {
			cseed = cfg.Seed
		}
		plan, err := cluster.ApplyChaos(&cfg, *chaosSpec, cseed)
		if err != nil {
			fatal(err)
		}
		planLine = cluster.PlanSummary(plan)
	}
	if *sensorSpec != "" {
		cseed := *chaosSeed
		if cseed == 0 {
			cseed = cfg.Seed
		}
		cfg.NaiveSensing = *sensorNaive
		plan, err := cluster.ApplySensorChaos(&cfg, *sensorSpec, cseed)
		if err != nil {
			fatal(err)
		}
		if planLine != "" {
			planLine += "; "
		}
		planLine += fmt.Sprintf("sensor plan: %d fault windows", len(plan.SensorFaults))
	}

	var sink *telemetry.FileSink
	if *events != "" {
		keep := telemetry.AllKinds
		if *eventsFilter != "" {
			var err error
			if keep, err = telemetry.ParseKindSet(*eventsFilter); err != nil {
				fatal(err)
			}
		}
		base := strings.TrimSuffix(*events, ".jsonl")
		var err error
		sink, err = telemetry.OpenFileSink(*events, base+".summary.txt", "telemetry summary", keep)
		if err != nil {
			fatal(err)
		}
		cfg.Sink = sink
	}

	// Run under a signal-aware context: SIGINT/SIGTERM stops the
	// simulation at the next tick boundary instead of killing the
	// process mid-write, and the event sink is flushed and closed on
	// every exit path — an interrupted run leaves a complete, parseable
	// JSONL stream rather than a truncated one.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := cluster.RunContext(ctx, cfg)
	if sink != nil {
		if cerr := sink.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fatal(fmt.Errorf("interrupted; partial event stream flushed cleanly"))
		}
		fatal(err)
	}

	supplyLabel := *supply
	if *configPath != "" {
		supplyLabel = "config:" + *configPath
	}
	tb := metrics.NewTable(
		fmt.Sprintf("willow-sim: %d servers, U=%.0f%%, supply=%s, %d ticks (%d warm-up)",
			n, cfg.Utilization*100, supplyLabel, cfg.Ticks, cfg.Warmup),
		"server", "mean power (W)", "mean temp (°C)", "saved (W)", "asleep frac",
	)
	for i := range res.MeanPower {
		tb.AddRow(
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.1f", res.MeanPower[i]),
			fmt.Sprintf("%.1f", res.MeanTemp[i]),
			fmt.Sprintf("%.1f", res.PowerSaved[i]),
			fmt.Sprintf("%.2f", res.AsleepFraction[i]),
		)
	}
	if *csv {
		fmt.Print(tb.CSV())
	} else {
		fmt.Print(tb.String())
	}

	fmt.Printf("\nmigrations: %d demand-driven, %d consolidation-driven (%d local)\n",
		res.DemandMigrations, res.ConsolidationMigrations, res.Stats.LocalMigrations)
	fmt.Printf("migration traffic share of network capacity: %.5f\n", res.MigrationShare)
	fmt.Printf("dropped demand: %.0f watt-ticks; ping-pongs: %d; max messages/link/tick: %d\n",
		res.DroppedWattTicks, res.Stats.PingPongs, res.Stats.MaxLinkMessagesPerTick)
	fmt.Printf("hottest temperature reached: %.1f °C\n", res.MaxTemp)
	if *sensorSpec != "" {
		fmt.Printf("hottest observed temperature: %.1f °C; true-limit violations: %d server-ticks\n",
			res.MaxObsTemp, res.LimitViolationTicks)
		fmt.Printf("sensors: %d faults injected, %d readings rejected, %d unhealthy trips, %d guard-band ticks\n",
			res.Stats.SensorFaults, res.Stats.SensorRejected,
			res.Stats.SensorUnhealthy, res.Stats.SensorGuardTicks)
	}
	if *energyOut {
		e := res.Energy
		fmt.Printf("energy: %.0f J consumed over %d ticks (%.3g s/tick) — %.0f J useful work (%.4f work/joule), %.0f J shed, %.0f J dissipated\n",
			e.Fleet.Joules, cfg.Ticks, e.TickSeconds,
			e.Fleet.WorkJoules, e.Fleet.WorkPerJoule(), e.Fleet.ShedJoules, e.Fleet.HeatJoules)
		for _, r := range e.Racks {
			fmt.Printf("energy: rack %d (servers %d-%d): %.0f J, %.4f work/joule\n",
				r.Node, r.Lo+1, r.Hi, r.Totals.Joules, r.Totals.WorkPerJoule())
		}
		for _, c := range e.Classes {
			fmt.Printf("energy: class %s: %.0f J served\n", c.Class, c.ServedJoules)
		}
	}
	if planLine != "" {
		fmt.Println(planLine)
		fmt.Printf("faults: %d server (%d repaired), %d PMU (%d repaired); lease expiries: %d; degraded server-ticks: %d; restarts: %d\n",
			res.Stats.Failures, res.Stats.Repairs,
			res.Stats.PMUFailures, res.Stats.PMURepairs,
			res.Stats.LeaseExpiries, res.Stats.DegradedTicks, res.Stats.Restarts)
	}

	if sink != nil {
		fmt.Println()
		fmt.Print(sink.Agg.Table(fmt.Sprintf("telemetry: %d events -> %s", sink.Agg.Total(), *events)).String())
	}
}

func parseFanout(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad fan-out %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "willow-sim:", err)
	os.Exit(1)
}
