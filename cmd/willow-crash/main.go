// Command willow-crash is the seeded crash-injection harness behind the
// WAL's durability claim. It boots a real willowd with a write-ahead
// journal armed, injects a seeded schedule of live mutations over the
// API, and SIGKILLs the daemon at seeded points mid-run — then restarts
// it and lets recovery replay the journal. After N kill/restart cycles
// the final incarnation runs the simulation to completion, and the
// harness asserts the crashed run is byte-identical to a run that never
// died:
//
//   - /v1/state of the final incarnation matches the state an
//     uninterrupted replay (server.Replay) of the same mutation history
//     computes, byte for byte;
//   - /v1/stats matches too, with only wall-clock and subscriber
//     bookkeeping (uptime, hub counters) excluded;
//   - the snapshot journal equals exactly the mutations the harness got
//     acks for — nothing acknowledged was lost, nothing extra appeared;
//   - the telemetry event stream, assembled from each incarnation's
//     surviving file fragment, is byte-identical to the stream the
//     uninterrupted replay publishes.
//
// The kill protocol matters: the harness only SIGKILLs while no mutation
// is in flight (every POST has been acknowledged), so the WAL must hold
// exactly the acknowledged set — killing mid-POST would leave the
// fsync'd-but-unacknowledged window legitimately ambiguous. Ticks, by
// contrast, are killed mid-flight on purpose: they are deterministic and
// recovery re-executes them bit for bit.
//
//	willow-crash -willowd ./bin/willowd -cycles 5 -seed 1
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"syscall"
	"time"

	"willow/internal/dist"
	"willow/internal/server"
	"willow/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "willow-crash:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		willowd = flag.String("willowd", "willowd", "path to the willowd binary under test")
		cycles  = flag.Int("cycles", 5, "SIGKILL/restart cycles before the run completes")
		seed    = flag.Uint64("seed", 1, "seed for the kill schedule and mutation mix")
		ticks   = flag.Int("ticks", 400, "run length in ticks")
		tick    = flag.Duration("tick", 2*time.Millisecond, "willowd tick pace (small: the harness kills mid-run)")
		timeout = flag.Duration("timeout", 3*time.Minute, "overall harness deadline")
		dir     = flag.String("dir", "", "work directory (default: a fresh temp dir, removed on success)")
		keep    = flag.Bool("keep", false, "keep the work directory even on success")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	workDir := *dir
	if workDir == "" {
		var err error
		if workDir, err = os.MkdirTemp("", "willow-crash-"); err != nil {
			return err
		}
	}
	h := &harness{
		ctx:     ctx,
		willowd: *willowd,
		dir:     workDir,
		ticks:   *ticks,
		tick:    *tick,
		seed:    *seed,
		client:  &http.Client{Timeout: 10 * time.Second},
	}
	err := h.run(*cycles)
	if err == nil && !*keep && *dir == "" {
		os.RemoveAll(workDir)
	} else {
		fmt.Printf("work dir: %s\n", workDir)
	}
	return err
}

// harness drives one crash-recovery experiment end to end.
type harness struct {
	ctx     context.Context
	willowd string
	dir     string
	ticks   int
	tick    time.Duration
	seed    uint64
	client  *http.Client

	base  string       // current incarnation's base URL
	cmd   *exec.Cmd    // current incarnation's process
	acked []ackedMut   // every mutation acknowledged, in order
	frags []frag       // per-incarnation event-stream fragments
}

// ackedMut is one mutation the API acknowledged, with the tick the ack
// reported — the boundary the WAL must prove it landed on.
type ackedMut struct {
	mut  server.Mutation
	tick int
}

// frag is one incarnation's event file plus the recovery boundary of the
// incarnation that followed it: only events strictly before that
// boundary are this fragment's contribution (later ticks re-executed
// after the kill and republished). end < 0 means "contributes
// everything" (the final, gracefully stopped incarnation).
type frag struct {
	path string
	end  int
}

func (h *harness) run(cycles int) error {
	src := dist.NewSource(h.seed)
	killSrc := src.Fork()
	mutSrc := src.Fork()

	// Kill targets: distinct, increasing ticks in the first ~60% of the
	// run, leaving the tail for the final incarnation to finish cleanly.
	lo, hi := h.ticks/20, h.ticks*3/5
	if hi <= lo+cycles {
		return fmt.Errorf("ticks=%d too short for %d kill cycles", h.ticks, cycles)
	}
	targets := make([]int, 0, cycles)
	seen := map[int]bool{}
	for len(targets) < cycles {
		t := lo + int(killSrc.Uint64()%uint64(hi-lo))
		if !seen[t] {
			seen[t] = true
			targets = append(targets, t)
		}
	}
	sort.Ints(targets)

	fmt.Printf("willow-crash: seed %d, %d ticks @ %s, kill targets %v\n", h.seed, h.ticks, h.tick, targets)

	for inc := 0; ; inc++ {
		if err := h.start(inc); err != nil {
			return err
		}
		if inc >= cycles {
			break // final incarnation: run to completion below
		}
		if err := h.driveAndKill(inc, targets[inc], mutSrc); err != nil {
			h.cmd.Process.Kill()
			h.cmd.Wait()
			return err
		}
	}
	return h.finish(cycles)
}

// start boots incarnation inc of willowd and waits for its API. The
// first incarnation defines the run; later ones recover it from the WAL
// (their spec flags are ignored — the WAL is authoritative).
func (h *harness) start(inc int) error {
	portFile := filepath.Join(h.dir, "port")
	os.Remove(portFile)
	events := filepath.Join(h.dir, fmt.Sprintf("events_%d.jsonl", inc))
	args := []string{
		"-addr", "127.0.0.1:0",
		"-port-file", portFile,
		"-tick", h.tick.String(),
		"-ticks", fmt.Sprint(h.ticks),
		"-seed", fmt.Sprint(h.seed),
		"-wal", filepath.Join(h.dir, "run.wal"),
		"-events", events,
	}
	cmd := exec.Command(h.willowd, args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting willowd: %w", err)
	}
	h.cmd = cmd
	h.frags = append(h.frags, frag{path: events, end: -1})

	for {
		if err := h.ctx.Err(); err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			return err
		}
		if b, err := os.ReadFile(portFile); err == nil && len(bytes.TrimSpace(b)) > 0 {
			h.base = "http://" + strings.TrimSpace(string(b))
			if _, err := h.getJSON("/healthz", nil); err == nil {
				return nil
			}
		}
		if cmd.ProcessState != nil {
			return fmt.Errorf("willowd incarnation %d exited before serving", inc)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// driveAndKill waits for the run to reach the kill target, injects a
// seeded burst of mutations (awaiting every ack), then SIGKILLs the
// daemon and records the recovery boundary the next incarnation must
// resume at.
func (h *harness) driveAndKill(inc, target int, mutSrc *dist.Source) error {
	if err := h.waitTick(target); err != nil {
		return err
	}

	burst := 1 + int(mutSrc.Uint64()%3)
	for i := 0; i < burst; i++ {
		if err := h.inject(mutSrc, inc); err != nil {
			return err
		}
	}

	// All mutations acknowledged (hence fsync'd); SIGKILL mid-tick.
	if err := h.cmd.Process.Kill(); err != nil {
		return err
	}
	h.cmd.Wait()

	// The next incarnation resumes at the furthest boundary durable
	// state proves: the max acknowledged mutation tick. This
	// incarnation's fragment contributes only events before it.
	rec := 0
	for _, a := range h.acked {
		if a.tick > rec {
			rec = a.tick
		}
	}
	h.frags[len(h.frags)-1].end = rec
	fmt.Printf("cycle %d: killed at tick >= %d after %d mutations (recovery boundary %d)\n",
		inc, target, burst, rec)
	return nil
}

// inject POSTs one seeded mutation — mostly mean-neutral demand scales,
// with an occasional live chaos injection — and records the ack.
func (h *harness) inject(mutSrc *dist.Source, inc int) error {
	roll := mutSrc.Uint64() % 10
	if roll == 0 {
		seed := mutSrc.Uint64() | 1 // nonzero: no derived-seed ambiguity
		var resp struct {
			Tick int `json:"tick"`
		}
		err := h.postJSON("/v1/chaos", map[string]any{"spec": "light", "seed": seed, "sensor": false}, &resp)
		if err != nil {
			return err
		}
		h.acked = append(h.acked, ackedMut{
			mut:  server.Mutation{Tick: resp.Tick, Kind: "chaos", Spec: "light", Seed: seed},
			tick: resp.Tick,
		})
		return nil
	}
	srvIdx := -1
	if roll%2 == 1 {
		srvIdx = int(mutSrc.Uint64() % 18)
	}
	factor := 0.9 + 0.2*float64(mutSrc.Uint64()%1000)/1000.0
	var resp struct {
		Tick int `json:"tick"`
	}
	if err := h.postJSON("/v1/demand", map[string]any{"server": srvIdx, "factor": factor}, &resp); err != nil {
		return err
	}
	h.acked = append(h.acked, ackedMut{
		mut:  server.Mutation{Tick: resp.Tick, Kind: "demand", Server: srvIdx, Factor: factor},
		tick: resp.Tick,
	})
	return nil
}

// waitTick polls /healthz until the daemon's tick reaches target.
func (h *harness) waitTick(target int) error {
	for {
		if err := h.ctx.Err(); err != nil {
			return err
		}
		var hz struct {
			Tick int `json:"tick"`
		}
		if _, err := h.getJSON("/healthz", &hz); err == nil && hz.Tick >= target {
			return nil
		}
		time.Sleep(h.tick)
	}
}

// finish lets the last incarnation complete the run, captures its final
// state over the API, stops it gracefully, and verifies everything
// against the uninterrupted-run oracle.
func (h *harness) finish(cycles int) error {
	defer func() {
		if h.cmd.ProcessState == nil {
			h.cmd.Process.Kill()
			h.cmd.Wait()
		}
	}()

	// Wait for done=true (the daemon then serves until SIGTERM).
	for {
		if err := h.ctx.Err(); err != nil {
			return err
		}
		var st struct {
			Done bool `json:"done"`
		}
		if _, err := h.getJSON("/v1/stats", &st); err == nil && st.Done {
			break
		}
		time.Sleep(5 * h.tick)
	}

	stateRaw, err := h.getJSON("/v1/state", nil)
	if err != nil {
		return err
	}
	var stats server.StatsView
	if _, err := h.getJSON("/v1/stats", &stats); err != nil {
		return err
	}
	snapRaw, err := h.post("/v1/snapshot", nil)
	if err != nil {
		return err
	}
	var snap server.Snapshot
	if err := json.Unmarshal(snapRaw, &snap); err != nil {
		return fmt.Errorf("final snapshot: %w", err)
	}

	// Graceful stop: SIGTERM drains the tick loop, flushes and closes
	// the events file, so the last fragment is complete.
	if err := h.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := h.cmd.Wait(); err != nil {
		return fmt.Errorf("final willowd exit: %w", err)
	}

	// Check 1: the journal is exactly the acknowledged mutations — every
	// ack survived all the kills, and nothing was invented.
	if len(snap.Journal) != len(h.acked) {
		return fmt.Errorf("journal has %d mutations, harness acked %d", len(snap.Journal), len(h.acked))
	}
	for i, a := range h.acked {
		if !reflect.DeepEqual(snap.Journal[i], a.mut) {
			return fmt.Errorf("journal entry %d = %+v, acked %+v", i, snap.Journal[i], a.mut)
		}
	}

	// The oracle: replay the same (spec, journal) in one uninterrupted
	// run, streaming its telemetry to a file.
	oraclePath := filepath.Join(h.dir, "oracle.jsonl")
	sink, err := telemetry.OpenFileSink(oraclePath, "", "", telemetry.AllKinds)
	if err != nil {
		return err
	}
	oracle, err := server.Replay(snap, sink)
	if err != nil {
		sink.Close()
		return fmt.Errorf("oracle replay: %w", err)
	}
	if err := sink.Close(); err != nil {
		return err
	}
	defer oracle.Close()

	// Check 2: /v1/state byte-identical to the oracle's.
	oracleState, err := json.MarshalIndent(oracle.State(), "", "  ")
	if err != nil {
		return err
	}
	if !bytes.Equal(bytes.TrimSpace(stateRaw), bytes.TrimSpace(oracleState)) {
		return fmt.Errorf("final /v1/state differs from uninterrupted replay:\n--- crashed ---\n%s\n--- oracle ---\n%s",
			stateRaw, oracleState)
	}

	// Check 3: /v1/stats identical once wall-clock and hub bookkeeping
	// (the only legitimately incarnation-dependent fields) are excluded.
	oracleStats := oracle.Stats()
	for _, s := range []*server.StatsView{&stats, &oracleStats} {
		s.Uptime = 0
		s.EventsPublished = 0
		s.EventsDropped = 0
		s.Subscribers = 0
		s.SubscriberStats = nil
	}
	if !reflect.DeepEqual(stats, oracleStats) {
		return fmt.Errorf("final /v1/stats differs from uninterrupted replay:\ncrashed: %+v\noracle:  %+v", stats, oracleStats)
	}

	// Check 4: the assembled event stream is byte-identical.
	assembled, lines, err := h.assemble()
	if err != nil {
		return err
	}
	oracleEvents, err := os.ReadFile(oraclePath)
	if err != nil {
		return err
	}
	if !bytes.Equal(assembled, oracleEvents) {
		return fmt.Errorf("assembled event stream differs from uninterrupted replay (%d vs %d bytes): %s",
			len(assembled), len(oracleEvents), firstDiff(assembled, oracleEvents))
	}

	fmt.Printf("willow-crash OK: %d kills, %d mutations acked, state+stats+journal identical, %d events byte-identical\n",
		cycles, len(h.acked), lines)
	return nil
}

// assemble stitches the per-incarnation event files into the single
// stream an uninterrupted run would have written. Fragment i contributes
// the events before the next incarnation's recovery boundary — later
// ticks were re-executed and republished after the kill — and the final
// fragment contributes everything. A SIGKILL can tear the last line of a
// fragment (the flush contract only covers completed ticks), so an
// unterminated tail line is dropped; every contributed line must parse.
func (h *harness) assemble() ([]byte, int, error) {
	var out []byte
	lines := 0
	for i, fr := range h.frags {
		data, err := os.ReadFile(fr.path)
		if err != nil {
			return nil, 0, err
		}
		for len(data) > 0 {
			nl := bytes.IndexByte(data, '\n')
			if nl < 0 {
				if fr.end < 0 {
					return nil, 0, fmt.Errorf("final fragment %s ends mid-line", fr.path)
				}
				break // torn tail of a killed incarnation
			}
			line := data[:nl+1]
			data = data[nl+1:]
			ev, err := telemetry.Decode(bytes.TrimSuffix(line, []byte("\n")))
			if err != nil {
				return nil, 0, fmt.Errorf("fragment %d (%s): bad event line: %w", i, fr.path, err)
			}
			if fr.end >= 0 && ev.Tick >= fr.end {
				// Re-executed after recovery; the next fragment owns it.
				break
			}
			out = append(out, line...)
			lines++
		}
	}
	return out, lines, nil
}

// firstDiff locates the first byte where two streams diverge, for a
// readable failure message.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("first divergence at byte %d: ...%q vs ...%q", i, a[lo:i+1], b[lo:i+1])
		}
	}
	return fmt.Sprintf("one stream is a prefix of the other (at byte %d)", n)
}

func (h *harness) getJSON(path string, dst any) ([]byte, error) {
	req, err := http.NewRequestWithContext(h.ctx, http.MethodGet, h.base+path, nil)
	if err != nil {
		return nil, err
	}
	return h.do(req, dst)
}

func (h *harness) postJSON(path string, body, dst any) error {
	_, err := h.postBody(path, body, dst)
	return err
}

func (h *harness) post(path string, body any) ([]byte, error) {
	return h.postBody(path, body, nil)
}

func (h *harness) postBody(path string, body, dst any) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(h.ctx, http.MethodPost, h.base+path, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return h.do(req, dst)
}

func (h *harness) do(req *http.Request, dst any) ([]byte, error) {
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s %s: %s: %s", req.Method, req.URL.Path, resp.Status, bytes.TrimSpace(data))
	}
	if dst != nil {
		if err := json.Unmarshal(data, dst); err != nil {
			return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, err)
		}
	}
	return data, nil
}
