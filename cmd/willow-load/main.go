// Command willow-load hammers a live willowd API with N concurrent
// clients generating a seeded request mix (state/stats reads plus
// mean-neutral demand nudges), one streaming telemetry subscriber, and
// reports request-latency quantiles.
//
//	willow-load -addr http://127.0.0.1:8080 -n 1000 -clients 8
//	willow-load -n 5000 -clients 32 -demand 1 -retries 3 -req-timeout 2s
//
// With -retries, failed attempts (transport errors, per-request
// timeouts from -req-timeout, 429 shed by the admission gate, 5xx) are
// retried with jittered exponential backoff — 429 honors the server's
// Retry-After hint — and the final report counts retries, timeouts,
// and rejections alongside latency quantiles.
//
// It exits non-zero if any request fails after retries, so scripts can
// use it as a smoke gate.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"willow/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:8080", "willowd base URL")
		n          = flag.Int("n", 1000, "total requests")
		clients    = flag.Int("clients", 8, "concurrent client goroutines")
		seed       = flag.Uint64("seed", 1, "seed for the request mix")
		demand     = flag.Float64("demand", 0.05, "fraction of requests that POST /v1/demand")
		stream     = flag.Bool("stream", true, "subscribe to /v1/events for the duration and count events")
		timeout    = flag.Duration("timeout", 2*time.Minute, "overall run deadline")
		reqTimeout = flag.Duration("req-timeout", 0, "per-request deadline (0: only the 10s client timeout applies)")
		retries    = flag.Int("retries", 0, "retries per request on transport errors, timeouts, 429, or 5xx")
		backoff    = flag.Duration("backoff", 100*time.Millisecond, "base retry backoff (doubles per attempt, jittered; 429 honors Retry-After)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	base := strings.TrimSuffix(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	report, err := server.RunLoad(ctx, server.LoadOptions{
		BaseURL:        base,
		Clients:        *clients,
		Requests:       *n,
		Seed:           *seed,
		DemandFraction: *demand,
		Stream:         *stream,
		RequestTimeout: *reqTimeout,
		Retries:        *retries,
		Backoff:        *backoff,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "willow-load:", err)
		os.Exit(1)
	}
	fmt.Print(report.Table(fmt.Sprintf("willow-load: %d requests x %d clients -> %s", *n, *clients, base)).String())
	if report.Errors > 0 {
		fmt.Fprintf(os.Stderr, "willow-load: %d of %d requests failed\n", report.Errors, report.Requests)
		os.Exit(1)
	}
}
