// Command willow-failover is the seeded chaos harness behind the
// replication layer's byte-identical failover claim. It boots a real
// willowd primary plus a hot-standby follower whose replication link
// runs through an in-process disruption proxy, then repeatedly: injects
// seeded mutations, partitions and stalls the replication stream,
// waits for the follower to catch back up through the flapping link,
// SIGKILLs the primary at that exact moment, and promotes the follower
// — which becomes the primary of the next cycle. After N promote
// cycles the surviving daemon completes the run, and the harness
// asserts the failed-over run is byte-identical to a run that never
// failed:
//
//   - the final /v1/state matches an uninterrupted server.Replay of
//     the same mutation history, byte for byte;
//   - /v1/stats matches too (wall-clock and subscriber bookkeeping
//     excluded);
//   - the snapshot journal equals exactly the acknowledged mutations —
//     nothing a client was told "done" about died with a primary;
//   - the telemetry event stream, assembled from each incarnation's
//     file fragment spliced at its successor's promotion boundary, is
//     byte-identical to the uninterrupted replay's stream.
//
// -mode migrate runs the same verification over a scripted live
// migration instead: primary + follower, a mid-run handoff/promote
// cutover (server.RunMigration), post-cutover mutations on the new
// primary, and the identical four assertions at the end.
//
// The kill protocol extends willow-crash's: the primary is only killed
// once every acknowledged mutation is durable on the follower, because
// "nothing acknowledged is lost" is exactly the guarantee under test —
// and the kill lands the instant catch-up completes, so the window
// where the follower is merely *barely* sufficient is the one exercised.
//
//	willow-failover -willowd ./bin/willowd -cycles 3 -seed 1
//	willow-failover -willowd ./bin/willowd -mode migrate -seed 3
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"willow/internal/dist"
	"willow/internal/server"
	"willow/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "willow-failover:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		willowd = flag.String("willowd", "willowd", "path to the willowd binary under test")
		mode    = flag.String("mode", "failover", "failover (kill/promote cycles) or migrate (scripted live cutover)")
		cycles  = flag.Int("cycles", 3, "kill/promote cycles (failover mode)")
		seed    = flag.Uint64("seed", 1, "seed for kill targets, mutation mix, and disruption schedule")
		ticks   = flag.Int("ticks", 400, "run length in ticks")
		tick    = flag.Duration("tick", 4*time.Millisecond, "willowd tick pace")
		disrupt = flag.Int("disruptions", 3, "partition/stall rounds per cycle on the replication link")
		timeout = flag.Duration("timeout", 4*time.Minute, "overall harness deadline")
		dir     = flag.String("dir", "", "work directory (default: a fresh temp dir, removed on success)")
		keep    = flag.Bool("keep", false, "keep the work directory even on success")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	workDir := *dir
	if workDir == "" {
		var err error
		if workDir, err = os.MkdirTemp("", "willow-failover-"); err != nil {
			return err
		}
	}
	h := &harness{
		ctx:         ctx,
		willowd:     *willowd,
		dir:         workDir,
		ticks:       *ticks,
		tick:        *tick,
		seed:        *seed,
		disruptions: *disrupt,
		client:      &http.Client{Timeout: 10 * time.Second},
	}
	var err error
	switch *mode {
	case "failover":
		err = h.failover(*cycles)
	case "migrate":
		err = h.migrate()
	default:
		err = fmt.Errorf("unknown -mode %q", *mode)
	}
	if err == nil && !*keep && *dir == "" {
		os.RemoveAll(workDir)
	} else {
		fmt.Printf("work dir: %s\n", workDir)
	}
	return err
}

// harness drives one failover (or migration) experiment end to end.
type harness struct {
	ctx         context.Context
	willowd     string
	dir         string
	ticks       int
	tick        time.Duration
	seed        uint64
	disruptions int
	client      *http.Client

	acked []ackedMut // every mutation acknowledged, in order
	frags []frag     // per-incarnation event-stream fragments

	base string    // final primary's base URL (for finish)
	cmd  *exec.Cmd // final primary's process
}

// ackedMut is one mutation the API acknowledged, with the tick the ack
// reported.
type ackedMut struct {
	mut  server.Mutation
	tick int
}

// frag is one incarnation's event file plus its ownership boundary:
// the tick the NEXT incarnation resumed at. Only events strictly
// before the boundary belong to this fragment (later ticks re-executed
// on the successor and were republished there). end < 0 means
// "contributes everything" (the final incarnation).
type frag struct {
	path string
	end  int
}

// proc is one running willowd (primary or standby).
type proc struct {
	cmd    *exec.Cmd
	base   string
	events string
}

func (p *proc) kill() {
	if p != nil && p.cmd != nil && p.cmd.ProcessState == nil {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	}
}

// failover runs `cycles` kill/partition/promote cycles, then verifies.
func (h *harness) failover(cycles int) error {
	src := dist.NewSource(h.seed)
	killSrc := src.Fork()
	mutSrc := src.Fork()
	chaosSrc := src.Fork()

	// Kill targets: distinct increasing ticks in the first ~60% of the
	// run. If wall-clock overhead pushes a later cycle past its target
	// tick, waitTick returns immediately and the cycle still runs — the
	// byte-identity assertions are tick-agnostic.
	lo, hi := h.ticks/20, h.ticks*3/5
	if hi <= lo+cycles {
		return fmt.Errorf("ticks=%d too short for %d kill cycles", h.ticks, cycles)
	}
	targets := make([]int, 0, cycles)
	seen := map[int]bool{}
	for len(targets) < cycles {
		t := lo + int(killSrc.Uint64()%uint64(hi-lo))
		if !seen[t] {
			seen[t] = true
			targets = append(targets, t)
		}
	}
	sort.Ints(targets)
	fmt.Printf("willow-failover: seed %d, %d ticks @ %s, kill targets %v, %d disruptions/cycle\n",
		h.seed, h.ticks, h.tick, targets, h.disruptions)

	pri, err := h.spawnPrimary(0)
	if err != nil {
		return err
	}
	defer func() { pri.kill() }()

	for c := 0; c < cycles; c++ {
		px, err := newProxy(pri.base)
		if err != nil {
			return err
		}
		fol, err := h.spawnFollower(c+1, px.url())
		if err != nil {
			px.close()
			return err
		}
		// From here the follower must survive the cycle; kill it on error.
		cycleErr := func() error {
			if err := h.waitTick(pri.base, targets[c]); err != nil {
				return err
			}
			burst := 1 + int(mutSrc.Uint64()%3)
			for i := 0; i < burst; i++ {
				if err := h.inject(pri.base, mutSrc); err != nil {
					return err
				}
			}
			// Chaos on the replication link while the primary keeps
			// ticking: the follower must retry, resume from its durable
			// cursor, and survive server-side overflow disconnects.
			h.disrupt(px, chaosSrc)
			px.setMode(proxyPass)
			// Wait for catch-up to the acked set through the healed link,
			// then SIGKILL the primary at that exact moment.
			if err := h.waitFollowerRecords(fol.base, len(h.acked)); err != nil {
				return err
			}
			pri.kill()
			var pr struct {
				Tick    int `json:"tick"`
				Records int `json:"records"`
			}
			if err := h.postJSON(fol.base+"/v1/promote", nil, &pr); err != nil {
				return err
			}
			if pr.Records != len(h.acked) {
				return fmt.Errorf("cycle %d: promoted with %d records, harness acked %d", c, pr.Records, len(h.acked))
			}
			h.frags[len(h.frags)-2].end = pr.Tick
			fmt.Printf("cycle %d: killed primary at tick >= %d after %d mutations; follower promoted at tick %d (%d records)\n",
				c, targets[c], burst, pr.Tick, pr.Records)
			return nil
		}()
		px.close()
		if cycleErr != nil {
			fol.kill()
			return cycleErr
		}
		pri = fol
	}

	h.base, h.cmd = pri.base, pri.cmd
	return h.finish(fmt.Sprintf("%d promote cycles", cycles))
}

// migrate runs a scripted live migration mid-run and verifies the moved
// run byte-identically.
func (h *harness) migrate() error {
	src := dist.NewSource(h.seed)
	mutSrc := src.Fork()

	pri, err := h.spawnPrimary(0)
	if err != nil {
		return err
	}
	defer func() { pri.kill() }()
	fol, err := h.spawnFollower(1, pri.base)
	if err != nil {
		return err
	}
	defer func() {
		if h.cmd == nil {
			fol.kill()
		}
	}()

	// Mutate the source before the move so the cutover carries a
	// non-trivial journal.
	if err := h.waitTick(pri.base, h.ticks/4); err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		if err := h.inject(pri.base, mutSrc); err != nil {
			return err
		}
	}

	rep, err := server.RunMigration(h.ctx, server.MigrationOptions{
		Source: pri.base,
		Target: fol.base,
		Client: h.client,
	})
	if err != nil {
		return err
	}
	h.frags[0].end = rep.HandoffTick
	fmt.Printf("migrated at tick %d (%d records) in %s\n", rep.HandoffTick, rep.HandoffRecords, rep.Elapsed.Round(time.Millisecond))

	// The frozen source drains gracefully; its event file is final.
	if err := pri.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := pri.cmd.Wait(); err != nil {
		return fmt.Errorf("source willowd exit after handoff: %w", err)
	}

	// The moved run must keep accepting (and making durable) mutations.
	if err := h.waitTick(fol.base, rep.HandoffTick+h.ticks/10); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		if err := h.inject(fol.base, mutSrc); err != nil {
			return err
		}
	}

	h.base, h.cmd = fol.base, fol.cmd
	return h.finish("live migration")
}

// spawnPrimary boots incarnation 0: a fresh primary that defines the run.
func (h *harness) spawnPrimary(inc int) (*proc, error) {
	return h.spawn(inc, []string{
		"-tick", h.tick.String(),
		"-ticks", fmt.Sprint(h.ticks),
		"-seed", fmt.Sprint(h.seed),
		"-wal", filepath.Join(h.dir, fmt.Sprintf("wal_%d.wal", inc)),
	})
}

// spawnFollower boots a hot standby tailing primaryURL (usually the
// disruption proxy) with its own WAL.
func (h *harness) spawnFollower(inc int, primaryURL string) (*proc, error) {
	return h.spawn(inc, []string{
		"-tick", h.tick.String(),
		"-follow", primaryURL,
		"-seed", fmt.Sprint(h.seed + uint64(inc)), // distinct backoff jitter
		"-wal", filepath.Join(h.dir, fmt.Sprintf("wal_%d.wal", inc)),
	})
}

// spawn starts one willowd with common flags plus extra, waits for its
// API, and registers its event file as the newest fragment.
func (h *harness) spawn(inc int, extra []string) (*proc, error) {
	portFile := filepath.Join(h.dir, fmt.Sprintf("port_%d", inc))
	os.Remove(portFile)
	events := filepath.Join(h.dir, fmt.Sprintf("events_%d.jsonl", inc))
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-port-file", portFile,
		"-events", events,
	}, extra...)
	cmd := exec.Command(h.willowd, args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting willowd %d: %w", inc, err)
	}
	p := &proc{cmd: cmd, events: events}
	h.frags = append(h.frags, frag{path: events, end: -1})
	for {
		if err := h.ctx.Err(); err != nil {
			p.kill()
			return nil, err
		}
		if b, err := os.ReadFile(portFile); err == nil && len(bytes.TrimSpace(b)) > 0 {
			p.base = "http://" + strings.TrimSpace(string(b))
			if _, err := h.getJSON(p.base+"/healthz", nil); err == nil {
				return p, nil
			}
		}
		if cmd.ProcessState != nil {
			return nil, fmt.Errorf("willowd %d exited before serving", inc)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// disrupt runs the seeded partition/stall schedule on the replication
// link: cut rounds drop every connection and refuse new ones; stall
// rounds hold bytes silently (the nastier failure — the TCP session
// stays up while no data moves). The primary keeps ticking throughout.
func (h *harness) disrupt(px *proxy, src *dist.Source) {
	for i := 0; i < h.disruptions; i++ {
		mode := proxyCut
		if src.Uint64()%2 == 0 {
			mode = proxyStall
		}
		px.setMode(mode)
		h.sleep(time.Duration(20+src.Uint64()%80) * time.Millisecond)
		px.setMode(proxyPass)
		h.sleep(time.Duration(10+src.Uint64()%40) * time.Millisecond)
	}
}

func (h *harness) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-h.ctx.Done():
	case <-t.C:
	}
}

// inject POSTs one seeded mutation — mostly mean-neutral demand scales,
// with an occasional live chaos injection — and records the ack.
func (h *harness) inject(base string, mutSrc *dist.Source) error {
	roll := mutSrc.Uint64() % 10
	if roll == 0 {
		seed := mutSrc.Uint64() | 1 // nonzero: no derived-seed ambiguity
		var resp struct {
			Tick int `json:"tick"`
		}
		if err := h.postJSON(base+"/v1/chaos", map[string]any{"spec": "light", "seed": seed, "sensor": false}, &resp); err != nil {
			return err
		}
		h.acked = append(h.acked, ackedMut{
			mut:  server.Mutation{Tick: resp.Tick, Kind: "chaos", Spec: "light", Seed: seed},
			tick: resp.Tick,
		})
		return nil
	}
	srvIdx := -1
	if roll%2 == 1 {
		srvIdx = int(mutSrc.Uint64() % 18)
	}
	factor := 0.9 + 0.2*float64(mutSrc.Uint64()%1000)/1000.0
	var resp struct {
		Tick int `json:"tick"`
	}
	if err := h.postJSON(base+"/v1/demand", map[string]any{"server": srvIdx, "factor": factor}, &resp); err != nil {
		return err
	}
	h.acked = append(h.acked, ackedMut{
		mut:  server.Mutation{Tick: resp.Tick, Kind: "demand", Server: srvIdx, Factor: factor},
		tick: resp.Tick,
	})
	return nil
}

// waitTick polls a daemon's /healthz until its tick reaches target.
func (h *harness) waitTick(base string, target int) error {
	for {
		if err := h.ctx.Err(); err != nil {
			return err
		}
		var hz struct {
			Tick int `json:"tick"`
		}
		if _, err := h.getJSON(base+"/healthz", &hz); err == nil && hz.Tick >= target {
			return nil
		}
		time.Sleep(h.tick)
	}
}

// waitFollowerRecords polls the follower's /healthz until it holds at
// least want durable records — every acknowledged mutation.
func (h *harness) waitFollowerRecords(base string, want int) error {
	for {
		if err := h.ctx.Err(); err != nil {
			return err
		}
		var hv server.HealthView
		if _, err := h.getJSON(base+"/healthz", &hv); err == nil &&
			hv.Replication != nil && hv.Replication.Records >= want {
			return nil
		}
		time.Sleep(h.tick)
	}
}

// finish waits for the surviving primary to complete the run, captures
// its final state, stops it gracefully, and verifies all four
// byte-identity claims against the uninterrupted Replay oracle.
func (h *harness) finish(what string) error {
	defer func() {
		if h.cmd.ProcessState == nil {
			h.cmd.Process.Kill()
			h.cmd.Wait()
		}
	}()

	for {
		if err := h.ctx.Err(); err != nil {
			return err
		}
		var st struct {
			Done bool `json:"done"`
		}
		if _, err := h.getJSON(h.base+"/v1/stats", &st); err == nil && st.Done {
			break
		}
		time.Sleep(5 * h.tick)
	}

	stateRaw, err := h.getJSON(h.base+"/v1/state", nil)
	if err != nil {
		return err
	}
	var stats server.StatsView
	if _, err := h.getJSON(h.base+"/v1/stats", &stats); err != nil {
		return err
	}
	snapRaw, err := h.postRaw(h.base + "/v1/snapshot")
	if err != nil {
		return err
	}
	var snap server.Snapshot
	if err := json.Unmarshal(snapRaw, &snap); err != nil {
		return fmt.Errorf("final snapshot: %w", err)
	}

	if err := h.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := h.cmd.Wait(); err != nil {
		return fmt.Errorf("final willowd exit: %w", err)
	}

	// Check 1: journal == acknowledged set, exactly.
	if len(snap.Journal) != len(h.acked) {
		return fmt.Errorf("journal has %d mutations, harness acked %d", len(snap.Journal), len(h.acked))
	}
	for i, a := range h.acked {
		if !reflect.DeepEqual(snap.Journal[i], a.mut) {
			return fmt.Errorf("journal entry %d = %+v, acked %+v", i, snap.Journal[i], a.mut)
		}
	}

	// The oracle: one uninterrupted run of the same (spec, journal).
	oraclePath := filepath.Join(h.dir, "oracle.jsonl")
	sink, err := telemetry.OpenFileSink(oraclePath, "", "", telemetry.AllKinds)
	if err != nil {
		return err
	}
	oracle, err := server.Replay(snap, sink)
	if err != nil {
		sink.Close()
		return fmt.Errorf("oracle replay: %w", err)
	}
	if err := sink.Close(); err != nil {
		return err
	}
	defer oracle.Close()

	// Check 2: /v1/state byte-identical.
	oracleState, err := json.MarshalIndent(oracle.State(), "", "  ")
	if err != nil {
		return err
	}
	if !bytes.Equal(bytes.TrimSpace(stateRaw), bytes.TrimSpace(oracleState)) {
		return fmt.Errorf("final /v1/state differs from uninterrupted replay:\n--- failed-over ---\n%s\n--- oracle ---\n%s",
			stateRaw, oracleState)
	}

	// Check 3: /v1/stats identical minus wall-clock/subscriber fields.
	oracleStats := oracle.Stats()
	for _, s := range []*server.StatsView{&stats, &oracleStats} {
		s.Uptime = 0
		s.EventsPublished = 0
		s.EventsDropped = 0
		s.Subscribers = 0
		s.SubscriberStats = nil
	}
	if !reflect.DeepEqual(stats, oracleStats) {
		return fmt.Errorf("final /v1/stats differs from uninterrupted replay:\nfailed-over: %+v\noracle:      %+v", stats, oracleStats)
	}

	// Check 4: the spliced event stream is byte-identical.
	assembled, lines, err := h.assemble()
	if err != nil {
		return err
	}
	oracleEvents, err := os.ReadFile(oraclePath)
	if err != nil {
		return err
	}
	if !bytes.Equal(assembled, oracleEvents) {
		return fmt.Errorf("assembled event stream differs from uninterrupted replay (%d vs %d bytes): %s",
			len(assembled), len(oracleEvents), firstDiff(assembled, oracleEvents))
	}

	fmt.Printf("willow-failover OK: %s, %d mutations acked, state+stats+journal identical, %d events byte-identical\n",
		what, len(h.acked), lines)
	return nil
}

// assemble stitches the per-incarnation event files into the single
// stream an uninterrupted run would have written: fragment i
// contributes events strictly before its successor's promotion
// boundary; the final fragment contributes everything. A SIGKILL can
// tear the last line of a killed primary's file, so an unterminated
// tail is dropped; every contributed line must parse.
func (h *harness) assemble() ([]byte, int, error) {
	var out []byte
	lines := 0
	for i, fr := range h.frags {
		data, err := os.ReadFile(fr.path)
		if err != nil {
			return nil, 0, err
		}
		for len(data) > 0 {
			nl := bytes.IndexByte(data, '\n')
			if nl < 0 {
				if fr.end < 0 {
					return nil, 0, fmt.Errorf("final fragment %s ends mid-line", fr.path)
				}
				break // torn tail of a killed incarnation
			}
			line := data[:nl+1]
			data = data[nl+1:]
			ev, err := telemetry.Decode(bytes.TrimSuffix(line, []byte("\n")))
			if err != nil {
				return nil, 0, fmt.Errorf("fragment %d (%s): bad event line: %w", i, fr.path, err)
			}
			if fr.end >= 0 && ev.Tick >= fr.end {
				break // re-executed after the boundary; the successor owns it
			}
			out = append(out, line...)
			lines++
		}
	}
	return out, lines, nil
}

// firstDiff locates the first byte where two streams diverge.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("first divergence at byte %d: ...%q vs ...%q", i, a[lo:i+1], b[lo:i+1])
		}
	}
	return fmt.Sprintf("one stream is a prefix of the other (at byte %d)", n)
}

// ---- HTTP helpers ----

func (h *harness) getJSON(url string, dst any) ([]byte, error) {
	req, err := http.NewRequestWithContext(h.ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return h.do(req, dst)
}

func (h *harness) postJSON(url string, body, dst any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(h.ctx, http.MethodPost, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	_, err = h.do(req, dst)
	return err
}

func (h *harness) postRaw(url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(h.ctx, http.MethodPost, url, nil)
	if err != nil {
		return nil, err
	}
	return h.do(req, nil)
}

func (h *harness) do(req *http.Request, dst any) ([]byte, error) {
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s %s: %s: %s", req.Method, req.URL.Path, resp.Status, bytes.TrimSpace(data))
	}
	if dst != nil {
		if err := json.Unmarshal(data, dst); err != nil {
			return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, err)
		}
	}
	return data, nil
}

// ---- disruption proxy ----

// Proxy link modes.
const (
	proxyPass  = int32(0) // forward bytes normally
	proxyCut   = int32(1) // drop every connection, refuse new ones
	proxyStall = int32(2) // accept and hold: the link is up, no bytes move
)

// proxy is a TCP forwarder the harness interposes on the replication
// link so it can partition (cut) and black-hole (stall) the stream
// without touching either daemon.
type proxy struct {
	ln     net.Listener
	target string
	mode   atomic.Int32

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// newProxy starts a forwarder to primaryBase (an http://host:port URL).
func newProxy(primaryBase string) (*proxy, error) {
	target := strings.TrimPrefix(primaryBase, "http://")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &proxy{ln: ln, target: target, conns: map[net.Conn]struct{}{}}
	go p.accept()
	return p, nil
}

func (p *proxy) url() string { return "http://" + p.ln.Addr().String() }

// setMode switches the link mode; entering cut also severs every live
// connection, so the follower sees a hard partition, not a quiet one.
func (p *proxy) setMode(mode int32) {
	p.mode.Store(mode)
	if mode == proxyCut {
		p.mu.Lock()
		for c := range p.conns {
			c.Close()
		}
		p.mu.Unlock()
	}
}

func (p *proxy) close() {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.ln.Close()
}

func (p *proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

func (p *proxy) accept() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if p.mode.Load() == proxyCut {
			conn.Close()
			continue
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			conn.Close()
			continue
		}
		if !p.track(conn) || !p.track(up) {
			conn.Close()
			up.Close()
			return
		}
		go p.pipe(up, conn)
		go p.pipe(conn, up)
	}
}

// pipe forwards one direction, honoring stall (hold bytes, keep the
// connection) and cut (sever).
func (p *proxy) pipe(dst, src net.Conn) {
	defer p.untrack(dst)
	defer p.untrack(src)
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			for p.mode.Load() == proxyStall {
				time.Sleep(2 * time.Millisecond)
			}
			if p.mode.Load() == proxyCut {
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}
