// Command willow-migrate moves a running Willow cluster between two
// willowd processes with zero state divergence: wait for the target
// standby to catch up, freeze the source at a tick boundary
// (POST /v1/handoff), wait for the standby to drain the frozen journal,
// then promote it (POST /v1/promote) and verify the boundary moved
// intact. The source keeps serving reads until it is shut down.
//
//	willowd -addr :8080 -wal a.wal ...                     # source
//	willowd -addr :8081 -follow http://host:8080 -wal b.wal # target
//	willow-migrate -from http://host:8080 -to http://host:8081
//
// Determinism makes the moved run byte-identical to an unmoved one:
// the target replays the same spec and journal and resumes at exactly
// the frozen tick.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"willow/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "willow-migrate:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		from    = flag.String("from", "", "source primary's base URL (required)")
		to      = flag.String("to", "", "target standby's base URL (required)")
		timeout = flag.Duration("timeout", 30*time.Second, "bound on each wait phase (catch-up, drain)")
		poll    = flag.Duration("poll", 25*time.Millisecond, "health poll interval while waiting")
	)
	flag.Parse()
	if *from == "" || *to == "" {
		return fmt.Errorf("both -from and -to are required")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("migrating %s -> %s\n", *from, *to)
	rep, err := server.RunMigration(ctx, server.MigrationOptions{
		Source:  *from,
		Target:  *to,
		Timeout: *timeout,
		Poll:    *poll,
	})
	if err != nil {
		return err
	}
	fmt.Printf("cutover complete in %s: handed off at tick %d (%d journal records); target is primary\n",
		rep.Elapsed.Round(time.Millisecond), rep.HandoffTick, rep.HandoffRecords)
	fmt.Printf("the source is frozen and read-only; stop it at your leisure\n")
	return nil
}
