// Command willow-plan answers capacity-planning questions against the
// Willow simulator: how lean can the feed be for a given load, how much
// load fits a given feed, and how much battery bridges a solar day.
//
//	willow-plan -question minsupply -util 0.5
//	willow-plan -question minsupply -sweep
//	willow-plan -question maxutil -supply 5000
//	willow-plan -question battery -util 0.35 -peak 9000 -night 2500
package main

import (
	"flag"
	"fmt"
	"os"

	"willow/internal/metrics"
	"willow/internal/plan"
)

func main() {
	var (
		question = flag.String("question", "minsupply", "minsupply, maxutil, or battery")
		util     = flag.Float64("util", 0.5, "target mean utilization")
		supply   = flag.Float64("supply", 6000, "constant supply in watts (maxutil)")
		sweep    = flag.Bool("sweep", false, "answer across a utilization sweep (minsupply)")
		shed     = flag.Float64("maxshed", 0.002, "acceptable shed fraction of energy served")
		peak     = flag.Float64("peak", 9000, "midday solar generation, watts (battery)")
		night    = flag.Float64("night", 2500, "overnight grid floor, watts (battery)")
		rate     = flag.Float64("discharge", 3000, "battery discharge cap, watts (battery)")
		quick    = flag.Bool("quick", false, "shorter probe simulations")
	)
	flag.Parse()
	opts := plan.Options{MaxShedFraction: *shed, Quick: *quick}

	switch *question {
	case "minsupply":
		if *sweep {
			tb := metrics.NewTable(
				fmt.Sprintf("Leanest constant supply for the 18-server fleet (shed ≤ %.2f%%)", *shed*100),
				"utilization", "min supply (W)", "vs naive 8100 W",
			)
			for _, u := range []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8} {
				w, err := plan.MinSupply(u, 50, opts)
				if err != nil {
					fatal(err)
				}
				tb.AddRow(fmt.Sprintf("%.0f%%", u*100), fmt.Sprintf("%.0f", w),
					fmt.Sprintf("%.0f%%", 100*w/8100))
			}
			fmt.Print(tb.String())
			return
		}
		w, err := plan.MinSupply(*util, 25, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("minimum supply for U=%.0f%%: %.0f W (%.0f%% of the naive 8100 W provisioning)\n",
			*util*100, w, 100*w/8100)
	case "maxutil":
		u, err := plan.MaxUtilization(*supply, 0.01, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("a %.0f W feed sustains the fleet up to U=%.0f%% (shed ≤ %.2f%%)\n",
			*supply, u*100, *shed*100)
	case "battery":
		day := plan.SolarDay{PeakWatts: *peak, NightWatts: *night, EpochsPerDay: 96}
		cap, err := plan.BatteryCapacity(*util, day, *rate, 1000, 1e6, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("solar day %.0f W peak / %.0f W night at U=%.0f%%: battery of %.0f watt-epochs (discharge cap %.0f W) keeps shed ≤ %.2f%%\n",
			*peak, *night, *util*100, cap, *rate, *shed*100)
	default:
		fatal(fmt.Errorf("unknown question %q", *question))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "willow-plan:", err)
	os.Exit(1)
}
