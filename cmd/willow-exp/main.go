// Command willow-exp regenerates the tables and figures of the paper's
// evaluation. Each experiment is addressed by the paper artifact it
// reproduces:
//
//	willow-exp -list
//	willow-exp -run fig5
//	willow-exp -run table3 -csv
//	willow-exp -all
//
// Quick mode (-quick) shrinks run lengths for a fast smoke pass; the
// shapes remain but averages get noisier. -reps N replicates each
// experiment N times under independent derived seeds and reports
// mean ± 95 % CI tables; -parallel bounds the worker pool (0 =
// GOMAXPROCS — results never depend on it, only wall-clock does).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"willow/internal/exp"
	"willow/internal/policy"
	"willow/internal/telemetry"
)

func main() {
	var (
		list         = flag.Bool("list", false, "list available experiments")
		run          = flag.String("run", "", "experiment id to run (e.g. fig5, table3)")
		all          = flag.Bool("all", false, "run every experiment")
		quick        = flag.Bool("quick", false, "shrink run lengths (smoke mode)")
		csv          = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		seed         = flag.Uint64("seed", 0, "override the deterministic seed (0 = default)")
		reps         = flag.Int("reps", 0, "seeded replications per experiment (aggregated as mean ± 95% CI)")
		workers      = flag.Int("parallel", 0, "max concurrent experiment runs (0 = GOMAXPROCS, 1 = sequential)")
		save         = flag.String("save", "", "write each experiment's CSV and notes under this directory")
		report       = flag.String("report", "", "run every experiment and write a single markdown report here")
		events       = flag.String("events", "", "write per-run JSONL event streams and summary reports under this directory")
		eventsFilter = flag.String("events-filter", "", "comma-separated event kinds to keep in streams (budget,migration,throttle,sleep-wake,failure,qos,degraded,sensor; default all)")
		chaosSpec    = flag.String("chaos", "", "chaos schedule for fault-injecting experiments, e.g. \"medium\" or \"light,pmu-mtbf=400\" (the resilience experiment runs it against the fail-free baseline)")
		chaosSeed    = flag.Uint64("chaos-seed", 0, "seed for chaos schedule expansion (0 = fixed default)")
		sensorSpec   = flag.String("sensor-chaos", "", "sensor-fault spec for the sensing experiment, e.g. \"heavy\" or \"light,dropout=1\" (replaces its intensity ladder)")
		policySpec   = flag.String("policy", "", "controller policy for every run, e.g. \"integral\" or \"mpc,horizon=8\" (the bakeoff experiments ignore it and run all policies)")
	)
	flag.Parse()

	if *policySpec != "" {
		if _, err := policy.ParseSpec(*policySpec); err != nil {
			fatal(err)
		}
	}
	opts := exp.Options{
		Quick: *quick, Seed: *seed, Replications: *reps, Workers: *workers,
		ChaosSpec: *chaosSpec, ChaosSeed: *chaosSeed,
		SensorSpec: *sensorSpec, PolicySpec: *policySpec,
	}
	if *events != "" {
		sinks, err := eventSinkFactory(*events, *eventsFilter, *reps)
		if err != nil {
			fatal(err)
		}
		opts.EventSinks = sinks
	}

	// Ctrl-C stops scheduling new runs; in-flight simulations finish.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *report != "" {
		if err := writeReport(ctx, *report, opts); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *report)
		return
	}

	switch {
	case *list:
		for _, id := range exp.IDs() {
			e, err := exp.Get(id)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
	case *all:
		// Experiments are independent; run them on the pool and print in
		// registry order.
		results, err := exp.RunMany(ctx, exp.IDs(), opts)
		if err != nil {
			fatal(err)
		}
		for i, id := range exp.IDs() {
			if err := emit(id, results[i], *csv, *save); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	case *run != "":
		if err := runOne(ctx, *run, opts, *csv, *save); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(ctx context.Context, id string, opts exp.Options, csv bool, saveDir string) error {
	results, err := exp.RunMany(ctx, []string{id}, opts)
	if err != nil {
		return err
	}
	return emit(id, results[0], csv, saveDir)
}

// emit prints one experiment's result and optionally saves it.
func emit(id string, res *exp.Result, csv bool, saveDir string) error {
	if csv {
		fmt.Print(res.Table.CSV())
	} else {
		fmt.Print(res.Table.String())
	}
	for _, n := range res.Notes {
		fmt.Printf("note: %s\n", n)
	}
	if saveDir == "" {
		return nil
	}
	if err := os.MkdirAll(saveDir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(saveDir, id+".csv"), []byte(res.Table.CSV()), 0o644); err != nil {
		return err
	}
	var notes strings.Builder
	notes.WriteString(res.Table.Title)
	notes.WriteByte('\n')
	for _, n := range res.Notes {
		notes.WriteString("note: ")
		notes.WriteString(n)
		notes.WriteByte('\n')
	}
	return os.WriteFile(filepath.Join(saveDir, id+".notes.txt"), []byte(notes.String()), 0o644)
}

// writeReport regenerates every experiment and assembles one markdown
// document: title, table, notes per artifact.
func writeReport(ctx context.Context, path string, opts exp.Options) error {
	var sb strings.Builder
	sb.WriteString("# Willow — regenerated evaluation\n\n")
	sb.WriteString("Produced by `willow-exp -report`; every table below is a live run.\n\n")
	results, err := exp.RunMany(ctx, exp.IDs(), opts)
	if err != nil {
		return err
	}
	for i, id := range exp.IDs() {
		e, err := exp.Get(id)
		if err != nil {
			return err
		}
		res := results[i]
		fmt.Fprintf(&sb, "## %s — %s\n\n", e.ID, e.Title)
		title := res.Table.Title
		res.Table.Title = "" // the section heading carries the context
		sb.WriteString(res.Table.Markdown())
		res.Table.Title = title
		sb.WriteByte('\n')
		for _, n := range res.Notes {
			fmt.Fprintf(&sb, "- %s\n", n)
		}
		sb.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// eventSinkFactory returns the per-(experiment, replication) sink
// constructor RunMany installs on each task: <dir>/<id>.jsonl (or
// <id>.rep<r>.jsonl under -reps) plus a matching .summary.txt report.
// Each task owns its own file, so the files are byte-identical for any
// -parallel setting.
func eventSinkFactory(dir, filter string, reps int) (func(id string, rep int) (telemetry.Sink, error), error) {
	keep := telemetry.AllKinds
	if filter != "" {
		var err error
		if keep, err = telemetry.ParseKindSet(filter); err != nil {
			return nil, err
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return func(id string, rep int) (telemetry.Sink, error) {
		base := id
		if reps > 1 {
			base = fmt.Sprintf("%s.rep%d", id, rep)
		}
		return telemetry.OpenFileSink(
			filepath.Join(dir, base+".jsonl"),
			filepath.Join(dir, base+".summary.txt"),
			fmt.Sprintf("%s — telemetry summary", base),
			keep,
		)
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "willow-exp:", err)
	os.Exit(1)
}
