// Command willow-testbed drives the emulated three-server cluster of the
// paper's experimental evaluation (Section V-C).
//
//	willow-testbed -scenario deficit    # Figs. 15–18
//	willow-testbed -scenario plenty     # Fig. 19 + Table III
//	willow-testbed -scenario baseline   # Table I, Table II, Fig. 14
package main

import (
	"flag"
	"fmt"
	"os"

	"willow/internal/metrics"
	"willow/internal/power"
	"willow/internal/testbed"
)

func main() {
	var (
		scenario = flag.String("scenario", "deficit", "deficit, plenty, or baseline")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	switch *scenario {
	case "deficit":
		runDeficit(*seed)
	case "plenty":
		runPlenty(*seed)
	case "baseline":
		runBaseline(*seed)
	default:
		fatal(fmt.Errorf("unknown scenario %q", *scenario))
	}
}

func runDeficit(seed uint64) {
	r, err := testbed.DeficitRun(seed)
	if err != nil {
		fatal(err)
	}
	tr := power.DeficitTrace()
	tb := metrics.NewTable(
		"Energy-deficient run (Figs. 15–18): hosts at 80/50/50 % utilization",
		"unit", "supply (W)", "migrations", "T(A) °C", "T(B) °C", "T(C) °C",
	)
	for u := 0; u < r.Units; u++ {
		tb.AddRow(
			fmt.Sprintf("%d", u), fmt.Sprintf("%.0f", tr[u]), fmt.Sprintf("%d", r.MigrationsPerUnit[u]),
			fmt.Sprintf("%.1f", r.TempSeries[0][u]),
			fmt.Sprintf("%.1f", r.TempSeries[1][u]),
			fmt.Sprintf("%.1f", r.TempSeries[2][u]),
		)
	}
	fmt.Print(tb.String())
	fmt.Printf("\nfinal utilizations A/B/C: %.0f%% / %.0f%% / %.0f%% (asleep: %v)\n",
		r.UtilFinal[0]*100, r.UtilFinal[1]*100, r.UtilFinal[2]*100, r.AsleepAtEnd)
	fmt.Printf("dropped demand: %.0f watt-ticks; ping-pongs: %d\n", r.DroppedWattTicks, r.Stats.PingPongs)
}

func runPlenty(seed uint64) {
	r, err := testbed.PlentyRun(seed)
	if err != nil {
		fatal(err)
	}
	tb := metrics.NewTable(
		"Energy-plenty run (Fig. 19, Table III): consolidation at the 20 % threshold",
		"server", "initial util %", "final util %", "asleep",
	)
	for i, name := range testbed.HostNames {
		tb.AddRow(name,
			fmt.Sprintf("%.0f", r.UtilInitial[i]*100),
			fmt.Sprintf("%.0f", r.UtilFinal[i]*100),
			fmt.Sprintf("%v", r.AsleepAtEnd[i]))
	}
	fmt.Print(tb.String())
	fmt.Printf("\npower without consolidation: %.1f W; measured after: %.1f W; savings: %.1f%% (paper: ≈27.5%%)\n",
		r.PowerNoConsolidation, r.PowerFinal, r.Savings()*100)
}

func runBaseline(seed uint64) {
	rows, err := testbed.MeasureTableI(400, seed)
	if err != nil {
		fatal(err)
	}
	t1 := metrics.NewTable("Table I — utilization vs power", "utilization %", "power (W)")
	for _, r := range rows {
		t1.AddRow(fmt.Sprintf("%.0f", r.Util*100), fmt.Sprintf("%.1f", r.Watts))
	}
	fmt.Print(t1.String())

	profiles, err := testbed.MeasureAppProfiles(400, seed+1)
	if err != nil {
		fatal(err)
	}
	t2 := metrics.NewTable("\nTable II — application power profiles", "application", "increase (W)")
	for _, p := range profiles {
		t2.AddRow(p.Name, fmt.Sprintf("%.1f", p.Watts))
	}
	fmt.Print(t2.String())

	cal, err := testbed.CalibrateThermal(300, seed+2)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nFig. 14 — thermal calibration: fitted c1=%.4f (true %.4f), c2=%.4f (true %.4f), RMSE %.4f °C/unit\n",
		cal.C1, cal.TrueC1, cal.C2, cal.TrueC2, cal.RMSE)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "willow-testbed:", err)
	os.Exit(1)
}
