// Command willowd runs Willow as a live control-plane daemon: the
// simulated data center ticks under wall-clock pacing (or flat out
// with -ff) while an HTTP API serves state, accepts live demand and
// chaos injections, streams telemetry, and snapshots the run for
// restart continuity.
//
//	willowd -addr 127.0.0.1:8080 -tick 50ms
//	willowd -addr 127.0.0.1:0 -port-file /tmp/port -events run.jsonl
//	willowd -restore snap.json -ff            # resume a run to completion
//	willowd -follow http://primary:8080 -wal standby.wal -promote-after 3s
//
// With -follow, willowd boots as a hot standby: it tails the primary's
// /v1/replicate stream, makes every record durable in its own WAL, and
// serves a follower API (/healthz lag view, /metrics, POST /v1/promote)
// until promoted — manually, or automatically after -promote-after of
// primary silence — at which point it becomes a full primary resuming
// at exactly the primary's last proven tick boundary.
//
// SIGTERM/SIGINT drain gracefully: the tick loop stops at a boundary,
// open event streams terminate, sinks flush, and a final snapshot is
// written (-snapshot).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"willow/internal/server"
	"willow/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "willowd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "HTTP listen address (host:port, port 0 for random; empty disables the API)")
		portFile = flag.String("port-file", "", "write the bound listen address to this file (for scripts with -addr :0)")
		tickDur  = flag.Duration("tick", 50*time.Millisecond, "wall-clock duration of one demand tick (ignored with -ff)")
		ff       = flag.Bool("ff", false, "fast-forward: run all ticks at full speed (byte-identical to willow-sim)")

		util        = flag.Float64("util", 0.5, "target mean utilization in (0, 1]")
		fanout      = flag.String("fanout", "2,3,3", "PMU hierarchy fan-out, root downward")
		ticks       = flag.Int("ticks", 400, "total demand ticks to simulate")
		warmup      = flag.Int("warmup", 100, "warm-up ticks excluded from averages")
		seed        = flag.Uint64("seed", 2011, "random seed")
		supply      = flag.String("supply", "constant", "supply profile: constant, sine, or deficit-steps")
		hotzone     = flag.Bool("hotzone", true, "place the last four servers in a 40 °C ambient (18-server topologies)")
		chaosSpec   = flag.String("chaos", "", "fold a seeded fault schedule into the run at boot (see internal/chaos)")
		chaosSeed   = flag.Uint64("chaos-seed", 0, "seed for chaos expansion (0: derive from -seed)")
		sensorSpec  = flag.String("sensor-chaos", "", "fold seeded sensor faults into the run at boot (see internal/sensor)")
		sensorNaive = flag.Bool("sensor-naive", false, "disable the robust estimator under sensor chaos")
		lease       = flag.Int("lease", 0, "budget lease ticks (arm before injecting live PMU chaos; 0 = off)")
		sensing     = flag.Bool("sensing", false, "arm the robust temperature estimator at boot (for live sensor chaos)")
		energy      = flag.Bool("energy", false, "emit per-supply-window energy telemetry events (accounting is always on)")
		tickSecs    = flag.Float64("tick-seconds", 0, "simulated seconds one tick models for joule conversion (0 = 1 s)")
		policySpec  = flag.String("policy", "", "controller policy: willow (default), integral, or mpc, plus ,key=val knobs (see internal/policy)")
		pprofOn     = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the API listener")

		events       = flag.String("events", "", "stream every event as JSONL to this file (plus a .summary.txt report)")
		eventsFilter = flag.String("events-filter", "", "comma-separated event kinds to keep in the -events file (default all)")
		snapshotPath = flag.String("snapshot", "", "write a final snapshot here on shutdown")
		restorePath  = flag.String("restore", "", "boot from a snapshot instead of flags (spec comes from the snapshot)")

		walPath     = flag.String("wal", "", "write-ahead journal: fsync every mutation here before acknowledging; on restart, recover from it (plus -restore as the base snapshot)")
		maxInflight = flag.Int("max-inflight", server.DefaultMaxInflight, "admission gate: max concurrent mutations holding the tick path")
		maxQueue    = flag.Int("max-queue", server.DefaultMaxQueue, "admission gate: max mutations queued behind the in-flight ones; excess sheds with 429")

		follow       = flag.String("follow", "", "boot as a hot standby tailing this primary's /v1/replicate (spec comes from the primary; -wal is the standby's own journal)")
		promoteAfter = flag.Duration("promote-after", 0, "with -follow: promote automatically after this much primary silence (0 = manual POST /v1/promote only)")
	)
	flag.Parse()

	env := &runtimeEnv{
		addr: *addr, portFile: *portFile,
		events: *events, eventsFilter: *eventsFilter,
		snapshotPath: *snapshotPath,
		tickDur:      *tickDur, ff: *ff,
		maxInflight: *maxInflight, maxQueue: *maxQueue,
		pprofOn: *pprofOn,
	}

	if *follow != "" {
		return runFollower(env, server.FollowerOptions{
			Primary:      *follow,
			WALPath:      *walPath,
			PromoteAfter: *promoteAfter,
			Seed:         *seed,
		})
	}

	var (
		d   *server.Daemon
		wal *server.WAL
		err error
	)
	walExists := false
	if *walPath != "" {
		if _, serr := os.Stat(*walPath); serr == nil {
			walExists = true
		} else if !os.IsNotExist(serr) {
			return serr
		}
	}
	switch {
	case walExists:
		// Crash (or restart) recovery: the WAL is authoritative for the
		// spec and the mutation history; -restore, when given, supplies
		// the base snapshot and is cross-checked against the WAL.
		var info server.RecoveryInfo
		d, wal, info, err = server.Recover(*restorePath, *walPath)
		if err != nil {
			return err
		}
		torn := ""
		if info.TruncatedBytes > 0 {
			torn = fmt.Sprintf(", %d-byte torn tail truncated", info.TruncatedBytes)
		}
		fmt.Printf("recovered wal %s: resuming at tick %d/%d (%d durable mutations%s)\n",
			*walPath, info.Tick, d.Spec().Ticks, info.Mutations, torn)
	case *restorePath != "":
		snap, rerr := server.ReadSnapshot(*restorePath)
		if rerr != nil {
			return rerr
		}
		d, err = server.Restore(snap)
		if err != nil {
			return err
		}
		fmt.Printf("restored snapshot %s at tick %d/%d (%d journal entries)\n",
			*restorePath, snap.Tick, d.Spec().Ticks, len(snap.Journal))
	default:
		spec := server.Spec{
			Util:        *util,
			Ticks:       *ticks,
			Warmup:      *warmup,
			Seed:        *seed,
			Supply:      *supply,
			Hotzone:     *hotzone,
			Chaos:       *chaosSpec,
			ChaosSeed:   *chaosSeed,
			SensorChaos: *sensorSpec,
			SensorNaive: *sensorNaive,
			LeaseTicks:  *lease,
			Sensing:     *sensing,
			Energy:      *energy,
			TickSeconds: *tickSecs,
			Policy:      *policySpec,
		}
		if spec.Fanout, err = parseFanout(*fanout); err != nil {
			return err
		}
		if d, err = server.New(spec); err != nil {
			return err
		}
	}
	// -wal set but no file yet: create one seeded with the daemon's
	// current journal (empty on a fresh boot; the base snapshot's
	// journal after -restore), so the WAL always holds the complete
	// history from tick 0.
	if *walPath != "" && !walExists {
		if wal, err = server.CreateWAL(*walPath, d.Spec(), d.Snapshot().Journal); err != nil {
			return err
		}
		d.AttachWAL(wal)
		fmt.Printf("wal %s armed: mutations are durable before they are acknowledged\n", *walPath)
	}
	if wal != nil {
		defer wal.Close()
	}
	defer d.Close()

	sink, err := env.openSink(d)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var srv *http.Server
	if env.addr != "" {
		handler := server.NewHandlerOpts(d, server.HandlerOptions{
			MaxInflight: env.maxInflight,
			MaxQueue:    env.maxQueue,
		})
		bound := ""
		if srv, bound, err = env.serve(handler); err != nil {
			return err
		}
		spec := d.Spec()
		fmt.Printf("willowd: %d servers, U=%.0f%%, supply=%s, %d ticks; listening on http://%s\n",
			spec.Servers(), spec.Util*100, spec.Supply, spec.Ticks, bound)
	}

	return env.driveAndDrain(ctx, d, srv, sink)
}

// runtimeEnv bundles the flags both the primary and follower paths
// share: where to listen, where telemetry and snapshots go, how to
// pace the tick loop once driving.
type runtimeEnv struct {
	addr, portFile       string
	events, eventsFilter string
	snapshotPath         string
	tickDur              time.Duration
	ff                   bool
	maxInflight          int
	maxQueue             int
	pprofOn              bool
}

// runFollower boots willowd as a hot standby: tail the primary, serve
// the follower API, and on promotion become a full primary driving the
// run from the replicated boundary.
func runFollower(env *runtimeEnv, fopts server.FollowerOptions) error {
	f, err := server.NewFollower(fopts)
	if err != nil {
		return err
	}
	defer f.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		srv *http.Server
		sw  *server.SwitchHandler
	)
	if env.addr != "" {
		// The promote endpoint swaps in the full primary surface the
		// moment promotion succeeds; the listener never restarts.
		onPromote := func(d *server.Daemon) {
			sw.Set(server.NewHandlerOpts(d, server.HandlerOptions{
				MaxInflight: env.maxInflight,
				MaxQueue:    env.maxQueue,
			}))
		}
		sw = server.NewSwitchHandler(server.NewFollowerHandler(f, onPromote))
		bound := ""
		if srv, bound, err = env.serve(sw); err != nil {
			return err
		}
		auto := "manual promote only"
		if fopts.PromoteAfter > 0 {
			auto = fmt.Sprintf("auto-promote after %s of silence", fopts.PromoteAfter)
		}
		fmt.Printf("willowd: standby following %s (%s); listening on http://%s\n",
			fopts.Primary, auto, bound)
	}

	runErr := f.Run(ctx)
	d := f.Promoted()
	if d == nil {
		// Drained before ever promoting: stop serving and keep the WAL —
		// the standby can resume tailing from its durable cursor later.
		if srv != nil {
			shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(shCtx)
		}
		if runErr != nil && !errors.Is(runErr, context.Canceled) {
			return runErr
		}
		fmt.Printf("standby drained at %d replicated records (resume tick %d)\n", f.Records(), f.ResumeTick())
		return nil
	}

	fmt.Printf("promoted: resuming run at tick %d/%d with %d replicated mutations\n",
		d.NextTick(), d.Spec().Ticks, f.Records())
	if sw != nil {
		// Auto-promotion does not pass through the HTTP handler; make sure
		// the primary surface is live either way (Set is idempotent).
		sw.Set(server.NewHandlerOpts(d, server.HandlerOptions{
			MaxInflight: env.maxInflight,
			MaxQueue:    env.maxQueue,
		}))
	}
	defer d.Close()
	sink, err := env.openSink(d)
	if err != nil {
		return err
	}
	return env.driveAndDrain(ctx, d, srv, sink)
}

// openSink opens the -events FileSink and attaches it, when configured.
func (env *runtimeEnv) openSink(d *server.Daemon) (*telemetry.FileSink, error) {
	if env.events == "" {
		return nil, nil
	}
	keep := telemetry.AllKinds
	if env.eventsFilter != "" {
		var err error
		if keep, err = telemetry.ParseKindSet(env.eventsFilter); err != nil {
			return nil, err
		}
	}
	base := strings.TrimSuffix(env.events, ".jsonl")
	sink, err := telemetry.OpenFileSink(env.events, base+".summary.txt", "willowd telemetry", keep)
	if err != nil {
		return nil, err
	}
	d.SetSink(sink)
	return sink, nil
}

// serve binds env.addr, writes the port file, and starts an http.Server
// on handler (plus the pprof surface when armed).
func (env *runtimeEnv) serve(handler http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", env.addr)
	if err != nil {
		return nil, "", err
	}
	bound := ln.Addr().String()
	if env.portFile != "" {
		if werr := os.WriteFile(env.portFile, []byte(bound+"\n"), 0o644); werr != nil {
			return nil, "", werr
		}
	}
	if env.pprofOn {
		// Profiling is opt-in: the pprof surface costs nothing until
		// mounted, and a public daemon should not expose it by accident.
		root := http.NewServeMux()
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		root.Handle("/", handler)
		handler = root
	}
	// Slow-client hardening. No WriteTimeout: /v1/events streams for
	// the life of the subscription and a write deadline would sever it.
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		if serr := srv.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "willowd: http:", serr)
		}
	}()
	return srv, bound, nil
}

// driveAndDrain runs the tick loop to completion or signal, then drains
// in the only safe order: daemon streams first (hub + replication feed
// — they would otherwise hold Shutdown open), then the HTTP listener,
// then sink flush and the final snapshot — always at a clean tick
// boundary.
func (env *runtimeEnv) driveAndDrain(ctx context.Context, d *server.Daemon, srv *http.Server, sink *telemetry.FileSink) error {
	pace := env.tickDur
	if env.ff {
		pace = 0
	}
	runErr := make(chan error, 1)
	go func() { runErr <- d.Run(ctx, pace) }()

	// Serve-until-signalled when the API is up; otherwise the run's end
	// is the daemon's end (batch restore/verify mode).
	var driveErr error
	if srv != nil {
		select {
		case <-ctx.Done():
			driveErr = <-runErr
		case driveErr = <-runErr:
			if driveErr == nil {
				fmt.Printf("run complete at tick %d; serving until SIGTERM\n", d.NextTick())
				<-ctx.Done()
			}
		}
	} else {
		driveErr = <-runErr
	}
	if driveErr != nil && !errors.Is(driveErr, context.Canceled) {
		return driveErr
	}
	interrupted := errors.Is(driveErr, context.Canceled)

	d.Close()
	if srv != nil {
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if serr := srv.Shutdown(shCtx); serr != nil {
			fmt.Fprintln(os.Stderr, "willowd: shutdown:", serr)
		}
	}
	if sink != nil {
		d.SetSink(nil)
		if cerr := sink.Close(); cerr != nil {
			return cerr
		}
	}
	if env.snapshotPath != "" {
		snap, werr := d.WriteSnapshot(env.snapshotPath)
		if werr != nil {
			return werr
		}
		fmt.Printf("snapshot written to %s (tick %d, %d journal entries)\n",
			env.snapshotPath, snap.Tick, len(snap.Journal))
	}

	st := d.Stats()
	verb := "run complete"
	if interrupted && st.Tick < st.Ticks {
		verb = "interrupted"
	}
	fmt.Printf("%s at tick %d/%d: energy %.0f watt-ticks, dropped %.0f, max temp %.1f °C, %d+%d migrations, %d events published (%d dropped)\n",
		verb, st.Tick, st.Ticks, st.TotalEnergy, st.DroppedWattTicks, st.MaxTemp,
		st.DemandMigrations, st.ConsolidationMigrations, st.EventsPublished, st.EventsDropped)
	return nil
}

func parseFanout(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad fan-out %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}
