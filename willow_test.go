package willow_test

import (
	"math"
	"testing"

	"willow"
	"willow/internal/thermal"
	"willow/internal/workload"
)

// TestFacadeEndToEnd drives the whole library through the public facade
// only: build a hierarchy, attach servers and workload, run the
// controller, and check the control loop behaved.
func TestFacadeEndToEnd(t *testing.T) {
	tree, err := willow.BuildHierarchy([]int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	tm := thermal.Model{C1: 0.005, C2: 0.05, Ambient: 25, Limit: 70}
	specs := make([]willow.ServerSpec, 4)
	for i := range specs {
		specs[i] = willow.ServerSpec{
			Power:   willow.ServerPowerModel{Static: 50, Peak: 250},
			Thermal: tm,
			Apps: []*workload.App{{
				ID:          i,
				Class:       willow.AppClass{Name: "vm", Weight: 1},
				Mean:        60,
				NoiseLambda: -1,
			}},
		}
	}
	// Force a clear deficit on server 0: 140 W of demand against a
	// 110 W circuit (the default P_min margin is 10 W).
	specs[0].Apps[0].Mean = 90
	specs[0].CircuitLimit = 110

	ctrl, err := willow.NewController(tree, specs,
		willow.ConstantSupply(1000), willow.ControllerDefaults(), willow.NewRandom(42))
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Run(60)
	if ctrl.Stats.DemandMigrations == 0 {
		t.Error("the circuit-capped server never shed load")
	}
	if ctrl.Stats.PingPongs != 0 {
		t.Errorf("ping-pongs: %d", ctrl.Stats.PingPongs)
	}
}

func TestFacadeSimulation(t *testing.T) {
	cfg := willow.PaperSimulation(0.5)
	cfg.Warmup = 40
	cfg.Ticks = 120
	r, err := willow.RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MeanPower) != 18 {
		t.Errorf("%d servers in the paper simulation, want 18", len(r.MeanPower))
	}
	many, err := willow.RunSimulations([]willow.Simulation{cfg, cfg})
	if err != nil {
		t.Fatal(err)
	}
	if many[0].TotalEnergy != many[1].TotalEnergy {
		t.Error("identical configs diverged")
	}
}

func TestFacadeTestbed(t *testing.T) {
	r, err := willow.TestbedPlentyRun(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Savings()-0.275) > 0.03 {
		t.Errorf("savings %.3f, want ~0.275", r.Savings())
	}
	d, err := willow.TestbedDeficitRun(1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Units != 30 {
		t.Errorf("deficit run units = %d", d.Units)
	}
}

func TestFacadeIrregularHierarchy(t *testing.T) {
	tree, err := willow.BuildIrregularHierarchy([][]int{{2}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumServers() != 3 {
		t.Errorf("testbed hierarchy has %d servers", tree.NumServers())
	}
}

func TestFacadeSupplies(t *testing.T) {
	if got := willow.ConstantSupply(450).At(7); got != 450 {
		t.Errorf("constant supply = %v", got)
	}
	s := willow.SineSupply(100, 50, 40)
	if got := s.At(10); math.Abs(got-150) > 1e-9 {
		t.Errorf("sine quarter-period = %v", got)
	}
	if willow.Version == "" {
		t.Error("version empty")
	}
}

func TestFacadePlanner(t *testing.T) {
	opts := willow.PlanOptions{Quick: true, MaxShedFraction: 0.005}
	w, err := willow.MinSupply(0.4, 200, opts)
	if err != nil {
		t.Fatal(err)
	}
	if w <= 0 || w >= 8100 {
		t.Errorf("MinSupply(0.4) = %v, implausible", w)
	}
	u, err := willow.MaxUtilization(w*1.1, 0.05, opts)
	if err != nil {
		t.Fatal(err)
	}
	if u < 0.3 {
		t.Errorf("MaxUtilization = %v, want >= 0.3", u)
	}
}
